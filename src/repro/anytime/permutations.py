"""Sampling permutations (paper Section III-B2).

A *sampling permutation* defines the order in which the elements of a data
set are processed by a diffusive anytime stage.  As long as the permutation
function ``p`` is bijective, every element is processed exactly once and the
precise output is guaranteed.  The paper identifies three families:

- **sequential** — memory order, for priority-ordered data sets (e.g. bit
  planes in reduced-precision computation, where most-significant bits come
  first);
- **tree** — an N-dimensional bit-reverse permutation, for ordered data sets
  without priority (images, audio); the data set is visited at progressively
  increasing resolution (paper Figures 4 and 5);
- **pseudo-random** — an LFSR-driven permutation, for unordered data sets
  (histograms, k-means) where memory order would bias the approximation.

All permutations here return a NumPy index array ``order`` such that
``order[i]`` is the flat index of the ``i``-th element to process;
``order`` is always a permutation of ``arange(n)``.

Multi-threaded sampling (paper Section IV-C1) is supported by
:func:`split_cyclic`: the permutation sequence is divided cyclically among
workers, so worker ``t`` of ``T`` processes ``order[t::T]`` — low-resolution
coverage still appears as early as possible.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .lfsr import MAXIMAL_TAPS, Lfsr

__all__ = [
    "Permutation",
    "SequentialPermutation",
    "ReversedPermutation",
    "StridedPermutation",
    "TreePermutation",
    "LfsrPermutation",
    "bit_reverse",
    "split_cyclic",
    "split_blocked",
    "is_permutation",
]


def _size_of(shape: int | Sequence[int]) -> tuple[int, tuple[int, ...]]:
    """Normalize a size-or-shape argument to ``(n, shape_tuple)``."""
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    shape = tuple(int(s) for s in shape)
    if any(s <= 0 for s in shape):
        raise ValueError(f"shape must be positive, got {shape}")
    n = 1
    for s in shape:
        n *= s
    return n, shape


def bit_reverse(values: np.ndarray, bits: int) -> np.ndarray:
    """Reverse the low ``bits`` bits of each value (vectorized).

    This is the core primitive of the tree permutation: for a
    one-dimensional set of ``2**bits`` elements, the paper's permutation is
    ``p : b_{k-1}...b_0 -> b_0...b_{k-1}`` (Figure 4).
    """
    values = np.asarray(values, dtype=np.int64)
    out = np.zeros_like(values)
    for b in range(bits):
        out |= ((values >> b) & 1) << (bits - 1 - b)
    return out


class Permutation:
    """Base class for sampling permutations.

    Subclasses implement :meth:`order`, which materializes the permuted
    index sequence for a data set of a given size or shape.  Permutations
    are stateless value objects: calling :meth:`order` twice returns equal
    arrays, which is what makes multi-threaded sampling and hardware
    prefetching of the sequence possible (paper Sections IV-C1 and IV-C3).
    """

    #: short machine name used by cost models and reports
    name: str = "base"

    def order(self, shape: int | Sequence[int]) -> np.ndarray:
        """Return the processing order as a permutation of ``arange(n)``.

        Parameters
        ----------
        shape:
            Either the number of elements ``n`` or an N-dimensional shape.
            Multi-dimensional shapes matter only to permutations that are
            dimension-aware (the tree permutation); others flatten.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class SequentialPermutation(Permutation):
    """Memory-order (ascending index) permutation: ``p(i) = i``.

    Suited to priority-ordered data sets, where earlier elements matter
    more to the output (e.g. most-significant bit planes).
    """

    name = "sequential"

    def order(self, shape: int | Sequence[int]) -> np.ndarray:
        n, _ = _size_of(shape)
        return np.arange(n, dtype=np.int64)


class ReversedPermutation(Permutation):
    """Descending memory order: ``p(i) = n + 1 - i`` in the paper's 1-based
    notation (``n - 1 - i`` zero-based)."""

    name = "reversed"

    def order(self, shape: int | Sequence[int]) -> np.ndarray:
        n, _ = _size_of(shape)
        return np.arange(n - 1, -1, -1, dtype=np.int64)


class StridedPermutation(Permutation):
    """Fixed-stride sweep: visit ``0, s, 2s, ..., 1, 1+s, ...``.

    This is the access order of one loop-perforation pass; as a
    *permutation* (all offsets eventually visited) it is bijective and can
    drive a diffusive stage, unlike iterative re-execution which repeats
    work (paper Section III-B1).
    """

    name = "strided"

    def __init__(self, stride: int) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = int(stride)

    def order(self, shape: int | Sequence[int]) -> np.ndarray:
        n, _ = _size_of(shape)
        chunks = [np.arange(off, n, self.stride, dtype=np.int64)
                  for off in range(min(self.stride, n))]
        return np.concatenate(chunks) if chunks else np.empty(0, np.int64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"StridedPermutation(stride={self.stride})"


class TreePermutation(Permutation):
    """N-dimensional bit-reverse ("tree") permutation (paper Figures 4, 5).

    Elements are visited as a perfect ``2**N``-ary tree: after ``4**k``
    samples of a two-dimensional set, a ``2**k x 2**k`` uniform subgrid has
    been visited — the data set is sampled at progressively increasing
    resolution.

    The construction interleaves sequence-index bits across dimensions
    (last dimension first, matching the paper's 8x8 example where the new
    column index takes the even bits ``b0 b2 b4``) and assigns earlier
    sequence bits to *more significant* coordinate bits, which is exactly a
    per-dimension bit reversal.

    Non-power-of-two extents are handled by running the permutation on the
    next power of two per dimension and discarding out-of-range
    coordinates; the result is still a bijection onto the valid index set.
    """

    name = "tree"

    def order(self, shape: int | Sequence[int]) -> np.ndarray:
        _, shape = _size_of(shape)
        widths = [max(1, int(np.ceil(np.log2(s)))) if s > 1 else 0
                  for s in shape]
        total_bits = sum(widths)
        if total_bits == 0:
            return np.zeros(1, dtype=np.int64)
        if total_bits > 40:
            raise ValueError(f"tree permutation too large for shape {shape}")
        seq = np.arange(1 << total_bits, dtype=np.int64)
        coords = [np.zeros_like(seq) for _ in shape]
        # Assign sequence bits level by level: level l contributes bit
        # (width_d - 1 - l) of dimension d's coordinate.  Within a level,
        # dimensions are taken last-first (paper's column-first order).
        bit = 0
        max_width = max(widths)
        for level in range(max_width):
            for d in reversed(range(len(shape))):
                if level < widths[d]:
                    coords[d] |= ((seq >> bit) & 1) << (widths[d] - 1 - level)
                    bit += 1
        valid = np.ones(len(seq), dtype=bool)
        for d, s in enumerate(shape):
            valid &= coords[d] < s
        flat = np.zeros_like(seq)
        stride = 1
        for d in reversed(range(len(shape))):
            flat += coords[d] * stride
            stride *= shape[d]
        return flat[valid]

    def coordinates(self, shape: Sequence[int]) -> np.ndarray:
        """Return the visit order as an ``(n, ndim)`` coordinate array."""
        _, shape = _size_of(shape)
        flat = self.order(shape)
        return np.stack(np.unravel_index(flat, shape), axis=1)


class LfsrPermutation(Permutation):
    """Pseudo-random permutation driven by a maximal-length LFSR.

    A maximal-length LFSR of width ``w`` enumerates every value in
    ``[1, 2**w - 1]`` exactly once per period, so filtering its states to
    ``< n`` (and appending index 0, which an LFSR never emits) yields a
    deterministic bijection on ``[0, n)``.  This mirrors a hardware LFSR
    address generator and avoids the memory-order bias the paper warns
    about for unordered data sets (Figure 3).
    """

    name = "lfsr"

    def __init__(self, seed: int = 1,
                 taps: tuple[int, ...] | None = None) -> None:
        if seed <= 0:
            raise ValueError("LFSR seed must be positive")
        self.seed = int(seed)
        self.taps = taps

    def order(self, shape: int | Sequence[int]) -> np.ndarray:
        n, _ = _size_of(shape)
        if n == 1:
            return np.zeros(1, dtype=np.int64)
        width = max(2, int(np.ceil(np.log2(n))))
        if n == (1 << width):  # need strictly more states than n - 1
            width += 1
        width = min(width, 32)
        seed = (self.seed - 1) % ((1 << width) - 1) + 1
        lfsr = Lfsr(width, seed=seed, taps=self.taps)
        states = np.fromiter(lfsr.states(lfsr.period),
                             dtype=np.int64, count=lfsr.period)
        # Maximal-length LFSR states cover [1, 2**width - 1] exactly once,
        # so the states below n are exactly the indices 1..n-1, each once.
        out = states[states < n]
        # An LFSR never emits 0; prepend it so the first sample exists even
        # for one-element prefixes.
        return np.concatenate((np.zeros(1, dtype=np.int64), out))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LfsrPermutation(seed={self.seed})"


def split_cyclic(order: np.ndarray, workers: int) -> list[np.ndarray]:
    """Divide a permutation sequence cyclically among ``workers`` threads.

    Paper Section IV-C1: "the permutation sequence of p can be divided
    cyclically; given n threads, a thread that is currently processing the
    element at p(i) will next access the element at p(i + n)."  The cyclic
    split preserves the low-resolution-first property of the tree
    permutation: after each worker has processed ``k`` elements, exactly
    the first ``k * workers`` elements of the global sequence are done.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return [order[t::workers] for t in range(workers)]


def split_blocked(order: np.ndarray, workers: int) -> list[np.ndarray]:
    """Divide a permutation sequence into contiguous blocks per worker.

    Provided as the contrast case for the scheduling ablation: a blocked
    split gives each worker better locality but destroys the
    progressive-resolution property (worker 0 finishes the coarse samples
    while others fill in fine detail out of order).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return [np.array_split(order, workers)[t] for t in range(workers)]


def is_permutation(order: np.ndarray, n: int) -> bool:
    """Check that ``order`` is a bijection on ``[0, n)``."""
    order = np.asarray(order)
    if order.shape != (n,):
        return False
    seen = np.zeros(n, dtype=bool)
    valid = (order >= 0) & (order < n)
    if not valid.all():
        return False
    seen[order] = True
    return bool(seen.all())
