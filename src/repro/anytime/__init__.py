"""Anytime transformation toolkit.

Everything needed to turn an approximate-computing technique into an
*anytime* one (paper Section III-B): sampling permutations, commutative
operators and weighting, progressive fill policies, loop-perforation
schedules, bit-serial reduced precision, and the LFSR that drives
pseudo-random sampling.
"""

from .fill import (ConstantFill, FillPolicy, MeanFill, NearestFill,
                   TreeFill, sample_levels)
from .lfsr import MAXIMAL_TAPS, Lfsr, lfsr_sequence
from .operators import REGISTRY as OPERATOR_REGISTRY
from .operators import Operator, get_operator, register_operator
from .perforation import (StrideSchedule, geometric_strides,
                          perforated_indices)
from .permutations import (LfsrPermutation, Permutation,
                           ReversedPermutation, SequentialPermutation,
                           StridedPermutation, TreePermutation, bit_reverse,
                           is_permutation, split_blocked, split_cyclic)
from .precision import (AnytimeDotProduct, anytime_dot, bit_planes,
                        keep_top_bits, quantize_to_bits)

__all__ = [
    "ConstantFill", "FillPolicy", "MeanFill", "NearestFill", "TreeFill",
    "sample_levels",
    "MAXIMAL_TAPS", "Lfsr", "lfsr_sequence",
    "OPERATOR_REGISTRY", "Operator", "get_operator", "register_operator",
    "StrideSchedule", "geometric_strides", "perforated_indices",
    "LfsrPermutation", "Permutation", "ReversedPermutation",
    "SequentialPermutation", "StridedPermutation", "TreePermutation",
    "bit_reverse", "is_permutation", "split_blocked", "split_cyclic",
    "AnytimeDotProduct", "anytime_dot", "bit_planes", "keep_top_bits",
    "quantize_to_bits",
]
