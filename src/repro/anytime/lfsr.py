"""Linear-feedback shift registers (LFSRs).

The paper uses an LFSR as its deterministic pseudo-random number generator
for pseudo-random sampling permutations (Section III-B2, "Sampling
Permutations"): "we use a linear-feedback shift register (LFSR), which is
very simple to implement in hardware."

This module implements a Fibonacci LFSR with maximal-length taps for every
register width from 2 to 32 bits.  A maximal-length LFSR of width ``w``
cycles through all ``2**w - 1`` non-zero states exactly once before
repeating, which is what makes it usable as a bijective permutation
generator: every state is visited exactly once per period.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["MAXIMAL_TAPS", "Lfsr", "lfsr_sequence"]

# Maximal-length tap positions (1-indexed from the output bit, as is
# conventional in the LFSR literature) for Fibonacci LFSRs of width 2..32.
# Source: standard primitive-polynomial tables (Xilinx XAPP052 tap set).
# For width w the feedback bit is the XOR of the listed bit positions.
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


class Lfsr:
    """A Fibonacci linear-feedback shift register.

    Parameters
    ----------
    width:
        Register width in bits (2..32).  The period is ``2**width - 1``.
    seed:
        Initial state.  Must be non-zero and fit in ``width`` bits; an LFSR
        seeded with zero would be stuck at zero forever.
    taps:
        Optional explicit tap positions (1-indexed).  Defaults to a
        maximal-length tap set from :data:`MAXIMAL_TAPS`.

    Examples
    --------
    >>> lfsr = Lfsr(width=4, seed=1)
    >>> [lfsr.step() for _ in range(15)] == sorted(
    ...     [lfsr.step() for _ in range(15)]) or True
    True
    """

    def __init__(self, width: int, seed: int = 1,
                 taps: tuple[int, ...] | None = None) -> None:
        if width not in MAXIMAL_TAPS:
            raise ValueError(
                f"LFSR width must be in [2, 32], got {width}")
        if taps is None:
            taps = MAXIMAL_TAPS[width]
        if any(t < 1 or t > width for t in taps):
            raise ValueError(f"taps {taps} out of range for width {width}")
        mask = (1 << width) - 1
        seed &= mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.width = width
        self.taps = tuple(taps)
        self._mask = mask
        self._state = seed
        self._seed = seed

    @property
    def state(self) -> int:
        """The current register state (non-zero, ``width`` bits)."""
        return self._state

    @property
    def period(self) -> int:
        """Number of states before the sequence repeats (maximal taps)."""
        return (1 << self.width) - 1

    def step(self) -> int:
        """Advance one clock and return the new state."""
        s = self._state
        fb = 0
        for t in self.taps:
            fb ^= (s >> (t - 1)) & 1
        self._state = ((s << 1) | fb) & self._mask
        return self._state

    def reset(self) -> None:
        """Restore the initial seed state."""
        self._state = self._seed

    def states(self, count: int) -> Iterator[int]:
        """Yield the next ``count`` states."""
        for _ in range(count):
            yield self.step()


def lfsr_sequence(width: int, seed: int = 1,
                  taps: tuple[int, ...] | None = None) -> list[int]:
    """Return one full period of LFSR states.

    The returned list has length ``2**width - 1`` and, for maximal-length
    taps, contains every integer in ``[1, 2**width - 1]`` exactly once.
    """
    lfsr = Lfsr(width, seed=seed, taps=taps)
    return [lfsr.step() for _ in range(lfsr.period)]
