"""Reduced fixed-point precision as a diffusive anytime technique.

Paper Section III-B2, "Reduced Fixed-Point Precision": the binary
representation of an integer is a sum of powers of two, and addition is
commutative, so computing with one more bit plane at a time is *input
sampling over bits* with a sequential permutation (most-significant bits
first).  Crucially this is diffusive: the partial result accumulated from
the top ``k`` bit planes is reused, not recomputed, when plane ``k+1``
arrives — no work beyond the baseline multiply-accumulate is performed
(Figure 6).

This module provides bit-plane decomposition of integer arrays and anytime
(bit-serial) dot products / convolutions built on it, plus plain
truncation-based quantization used by the Figure 19 precision sweep.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = [
    "bit_planes",
    "keep_top_bits",
    "quantize_to_bits",
    "anytime_dot",
    "AnytimeDotProduct",
]


def bit_planes(values: np.ndarray, bits: int) -> list[np.ndarray]:
    """Decompose non-negative integers into weighted bit planes.

    Returns ``bits`` arrays, most-significant first, whose elementwise sum
    reconstructs ``values``.  Plane ``j`` (from the top) holds
    ``bit * 2**(bits - 1 - j)``.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"bit_planes needs integers, got {values.dtype}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if (values < 0).any():
        raise ValueError("bit_planes handles non-negative values only; "
                         "offset or sign-split signed data first")
    if values.size and int(values.max()) >= (1 << bits):
        raise ValueError(
            f"values exceed {bits} bits (max {int(values.max())})")
    planes = []
    for j in range(bits - 1, -1, -1):
        planes.append(((values >> j) & 1).astype(np.int64) << j)
    return planes


def keep_top_bits(values: np.ndarray, bits: int, total_bits: int,
                  ) -> np.ndarray:
    """Zero all but the top ``bits`` of ``total_bits``-bit integers.

    This is the mask the paper writes as ``W & 2**(32-i)`` family: the
    value seen after the first ``bits`` bit planes have been accumulated.
    """
    if not 0 <= bits <= total_bits:
        raise ValueError(
            f"bits must be in [0, {total_bits}], got {bits}")
    values = np.asarray(values)
    mask = ((1 << bits) - 1) << (total_bits - bits)
    return values & mask


def quantize_to_bits(values: np.ndarray, bits: int,
                     total_bits: int = 8) -> np.ndarray:
    """Truncate ``total_bits``-bit pixel data to its top ``bits`` bits.

    Used by the Figure 19 sweep ("8-bit (default), 6-bit, 4-bit and 2-bit
    pixel precisions"): an 8-bit pixel at 4-bit precision keeps bits 7..4.
    """
    return keep_top_bits(values, bits, total_bits)


def anytime_dot(inputs: np.ndarray, weights: np.ndarray, bits: int,
                ) -> Iterator[np.ndarray]:
    """Yield the running partial dot product ``inputs . weights`` as the
    bit planes of ``weights`` are folded in, most-significant first.

    After the final yield the result equals the precise
    ``inputs @ weights`` (integer arithmetic).  Weights must be
    non-negative ``bits``-bit integers; inputs may be any integers.

    This is the generator behind the paper's Figure 6: each yielded value
    is the output of the next intermediate computation ``f_i`` of the
    diffusive reduced-precision stage.
    """
    inputs = np.asarray(inputs, dtype=np.int64)
    acc: np.ndarray | None = None
    for plane in bit_planes(np.asarray(weights), bits):
        contribution = inputs @ plane
        acc = contribution if acc is None else acc + contribution
        yield acc


class AnytimeDotProduct:
    """Stateful anytime dot product: one bit plane per :meth:`step`.

    A small convenience wrapper over :func:`anytime_dot` exposing the
    accumulated output, the number of planes consumed and the exactness
    check against the precise product; used by tests, the quickstart
    example and the Figure 10 organization comparison.
    """

    def __init__(self, inputs: np.ndarray, weights: np.ndarray,
                 bits: int) -> None:
        self.inputs = np.asarray(inputs, dtype=np.int64)
        self.weights = np.asarray(weights)
        self.bits = bits
        self._gen = anytime_dot(self.inputs, self.weights, bits)
        self._steps = 0
        self.value: np.ndarray | None = None

    @property
    def steps_done(self) -> int:
        """Bit planes consumed so far."""
        return self._steps

    @property
    def done(self) -> bool:
        return self._steps >= self.bits

    def step(self) -> np.ndarray:
        """Fold in the next (most significant remaining) bit plane."""
        if self.done:
            raise StopIteration("all bit planes consumed")
        self.value = next(self._gen)
        self._steps += 1
        return self.value

    def run_to_completion(self) -> np.ndarray:
        """Consume all remaining planes and return the precise product."""
        while not self.done:
            self.step()
        assert self.value is not None
        return self.value

    def precise(self) -> np.ndarray:
        """The reference precise product (computed directly)."""
        return self.inputs @ np.asarray(self.weights, dtype=np.int64)
