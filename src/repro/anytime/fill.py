"""Fill policies for output sampling.

An output-sampled map stage (paper Section III-B2, "Output Sampling") has
computed only a prefix of its output elements at any instant.  The output
buffer must nonetheless always hold a *valid, whole* approximation of the
output (that is the entire point of the model), so the unsampled elements
are filled from the sampled ones.

For the tree permutation the natural fill is **progressive resolution**
(paper Figure 5): after ``4**k`` samples of a 2-D output, each sample owns
a ``(rows / 2**k) x (cols / 2**k)`` block and the output looks like a
``2**k x 2**k`` image upscaled — exactly the visualization the paper shows.
:class:`TreeFill` implements this block-replication fill.

For unordered (pseudo-random) sampling, :class:`NearestFill` fills each
missing element from its nearest computed neighbour, and
:class:`ConstantFill` / :class:`MeanFill` provide cheap alternatives.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FillPolicy", "TreeFill", "NearestFill", "ConstantFill",
           "MeanFill", "sample_levels"]


class FillPolicy:
    """Strategy for completing a partially sampled output.

    Subclasses implement :meth:`fill`.

    Parameters common to :meth:`fill`:

    - ``dense`` — the stage's internal output array (full shape); entries at
      ``order[:count]`` (flat indices into the leading ``spatial_ndim``
      axes) hold computed values, the rest are stale/uninitialized.
    - ``order`` — the sampling permutation (flat indices).
    - ``count`` — how many samples have been computed so far.

    ``fill`` returns a new array of the same shape with every element
    holding a valid approximation.  It must not modify ``dense``.
    """

    #: how many leading axes of ``dense`` the permutation indexes
    spatial_ndim: int | None = None

    def fill(self, dense: np.ndarray, order: np.ndarray,
             count: int) -> np.ndarray:
        raise NotImplementedError


def _spatial_shape(dense: np.ndarray, order: np.ndarray,
                   spatial_ndim: int | None) -> tuple[int, ...]:
    """Infer which leading axes of ``dense`` the flat ``order`` indexes."""
    if spatial_ndim is not None:
        shape = dense.shape[:spatial_ndim]
    else:
        shape = dense.shape
    n = int(np.prod(shape)) if shape else 1
    if n != len(order):
        raise ValueError(
            f"order length {len(order)} does not match spatial shape "
            f"{shape} of dense array {dense.shape}")
    return shape


def sample_levels(order: np.ndarray,
                  shape: tuple[int, ...]) -> np.ndarray:
    """Return the tree level of each sample in visit order.

    The level of a coordinate is determined by its trailing zero bits: a
    coordinate that is a multiple of ``2**(width - k)`` in every dimension
    first appears at level ``k``.  For a tree permutation, levels are
    non-decreasing along the visit order.
    """
    coords = np.unravel_index(np.asarray(order, dtype=np.int64), shape)
    levels = np.zeros(len(order), dtype=np.int64)
    for d, extent in enumerate(shape):
        width = max(1, int(np.ceil(np.log2(extent)))) if extent > 1 else 0
        if width == 0:
            continue
        c = coords[d].astype(np.int64)
        # trailing zeros, with tz(0) = width
        tz = np.full(len(order), width, dtype=np.int64)
        nonzero = c != 0
        cc = c[nonzero]
        t = np.zeros(len(cc), dtype=np.int64)
        rem = cc.copy()
        while True:
            even = (rem & 1) == 0
            if not even.any():
                break
            t[even] += 1
            rem[even] >>= 1
        tz[nonzero] = t
        levels = np.maximum(levels, width - tz)
    return levels


class TreeFill(FillPolicy):
    """Progressive-resolution block fill for tree-sampled outputs.

    Each computed sample paints the block of output elements it owns at its
    level; finer levels overwrite coarser ones, so the filled output is the
    paper's progressively-sharpening image.  Works for any number of
    spatial dimensions; ``spatial_ndim`` selects how many leading axes the
    permutation indexes (e.g. 2 for an RGB image sampled per pixel).
    """

    def __init__(self, spatial_ndim: int | None = None) -> None:
        self.spatial_ndim = spatial_ndim
        self._level_cache: dict[tuple[int, tuple[int, ...]], np.ndarray] = {}

    def _levels(self, order: np.ndarray,
                shape: tuple[int, ...]) -> np.ndarray:
        key = (len(order), shape)
        if key not in self._level_cache:
            self._level_cache[key] = sample_levels(order, shape)
        return self._level_cache[key]

    def fill(self, dense: np.ndarray, order: np.ndarray,
             count: int) -> np.ndarray:
        shape = _spatial_shape(dense, order, self.spatial_ndim)
        out = np.zeros_like(dense)
        if count <= 0:
            return out
        count = min(count, len(order))
        levels = self._levels(order, shape)
        prefix_levels = levels[:count]
        widths = [max(1, int(np.ceil(np.log2(s)))) if s > 1 else 0
                  for s in shape]
        max_level = max(widths) if widths else 0
        # The finest fully complete level's blocks tile the whole output,
        # so coarser levels cannot show through and are skipped.
        complete = 0
        for k in range(max_level + 1):
            if (levels <= k).sum() <= count:
                complete = k
            else:
                break
        coords = np.unravel_index(order[:count], shape)
        flat_dense = dense.reshape((int(np.prod(shape)),) + dense.shape[
            len(shape):])
        for k in range(complete, max_level + 1):
            sel = prefix_levels == k if k > complete else prefix_levels <= k
            if not sel.any():
                continue
            values = flat_dense[order[:count][sel]]
            block = [1 << max(w - k, 0) for w in widths]
            if all(b == 1 for b in block):
                idx = tuple(c[sel] for c in coords)
                out[idx] = values
                continue
            # Scatter each sample's value over its owned block.  Index
            # arrays broadcast (samples, b0, b1, ...); edge blocks of
            # non-power-of-two outputs clip to the boundary.
            idx = []
            for d, b in enumerate(block):
                offs = np.arange(b, dtype=np.int64)
                ix = coords[d][sel].reshape(
                    (-1,) + (1,) * len(block))
                offs = offs.reshape(
                    tuple(b if dd == d else 1
                          for dd in range(len(block))))
                idx.append(np.minimum(ix + offs, shape[d] - 1))
            out[tuple(idx)] = values.reshape(
                (values.shape[0],) + (1,) * len(block) + values.shape[1:])
        return out


class NearestFill(FillPolicy):
    """Fill each missing element from its nearest computed element.

    Uses a Euclidean distance transform over the computed mask; suited to
    pseudo-random (LFSR) output sampling where no block structure exists.
    """

    def __init__(self, spatial_ndim: int | None = None) -> None:
        self.spatial_ndim = spatial_ndim

    def fill(self, dense: np.ndarray, order: np.ndarray,
             count: int) -> np.ndarray:
        from scipy import ndimage

        shape = _spatial_shape(dense, order, self.spatial_ndim)
        if count <= 0:
            return np.zeros_like(dense)
        count = min(count, len(order))
        mask = np.zeros(shape, dtype=bool)
        mask.reshape(-1)[order[:count]] = True
        if mask.all():
            return dense.copy()
        nearest = ndimage.distance_transform_edt(
            ~mask, return_distances=False, return_indices=True)
        idx = tuple(nearest[d] for d in range(len(shape)))
        return dense[idx]


class ConstantFill(FillPolicy):
    """Fill missing elements with a constant (default 0)."""

    def __init__(self, value: float = 0.0,
                 spatial_ndim: int | None = None) -> None:
        self.value = value
        self.spatial_ndim = spatial_ndim

    def fill(self, dense: np.ndarray, order: np.ndarray,
             count: int) -> np.ndarray:
        shape = _spatial_shape(dense, order, self.spatial_ndim)
        out = np.full_like(dense, self.value)
        if count > 0:
            count = min(count, len(order))
            flat_out = out.reshape((int(np.prod(shape)),) + out.shape[
                len(shape):])
            flat_dense = dense.reshape(flat_out.shape)
            flat_out[order[:count]] = flat_dense[order[:count]]
        return out


class MeanFill(FillPolicy):
    """Fill missing elements with the mean of the computed ones."""

    def __init__(self, spatial_ndim: int | None = None) -> None:
        self.spatial_ndim = spatial_ndim

    def fill(self, dense: np.ndarray, order: np.ndarray,
             count: int) -> np.ndarray:
        shape = _spatial_shape(dense, order, self.spatial_ndim)
        if count <= 0:
            return np.zeros_like(dense)
        count = min(count, len(order))
        flat_dense = dense.reshape((int(np.prod(shape)),) + dense.shape[
            len(shape):])
        computed = flat_dense[order[:count]]
        mean = computed.mean(axis=0)
        out = np.broadcast_to(mean, dense.shape).astype(
            dense.dtype, copy=True).reshape(flat_dense.shape)
        out[order[:count]] = computed
        return out.reshape(dense.shape)
