"""Commutative operator registry for anytime reductions.

Input sampling (paper Section III-B2) turns a reduction into a diffusive
anytime stage: each intermediate computation combines one more sample into
the output with a commutative operator ``Δ``.  Two operator properties
matter to the model:

- **commutativity** — required: the final precise output must be reachable
  from *any* ordering of the sample computations, which is what lets a
  bijective permutation reorder them freely;
- **idempotence** — optional: if ``Δ`` is not idempotent (e.g. addition),
  intermediate outputs must be weighted by ``n / i`` (population over
  sample size) before dependent stages consume them; idempotent operators
  (min, max, bitwise and/or, set union/intersection) need no weighting.

:class:`Operator` bundles the combining function with its algebraic
properties and weighting rule, so reduction stages can be constructed from
a declarative description.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Operator", "REGISTRY", "get_operator", "register_operator"]


def _scale_weight(partial: Any, sample_size: int, population: int) -> Any:
    """Weight a non-idempotent accumulation by ``population / sample``.

    Paper Section III-B2: "any dependent stages that use O_i should use a
    weighted O'_i instead: O'_i = O_i * n / i".
    """
    if sample_size <= 0:
        return partial
    return partial * (population / sample_size)


def _identity_weight(partial: Any, sample_size: int, population: int) -> Any:
    return partial


@dataclass(frozen=True)
class Operator:
    """A commutative combining operator for anytime reductions.

    Attributes
    ----------
    name:
        Registry key.
    fn:
        Binary combining function ``(accumulator, update) -> accumulator``.
        Must be commutative and associative.
    identity:
        Identity element factory: called with the output ``shape`` and
        ``dtype`` to produce the initial accumulator ``O_0``.
    idempotent:
        True when ``a Δ a == a``; idempotent operators skip weighting.
    weight:
        Function mapping a partial accumulation, the current sample size
        and the population size to the normalized view dependents consume.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    identity: Callable[[tuple[int, ...], np.dtype], Any]
    idempotent: bool
    weight: Callable[[Any, int, int], Any] = field(default=_identity_weight)

    def combine(self, accumulator: Any, update: Any) -> Any:
        """Apply the operator: ``accumulator Δ update``."""
        return self.fn(accumulator, update)

    def weighted(self, partial: Any, sample_size: int,
                 population: int) -> Any:
        """Return the normalized intermediate output ``O'_i``."""
        return self.weight(partial, sample_size, population)


def _zeros(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def _full_min_identity(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    dtype = np.dtype(dtype)
    if np.issubdtype(dtype, np.floating):
        return np.full(shape, np.inf, dtype=dtype)
    return np.full(shape, np.iinfo(dtype).max, dtype=dtype)


def _full_max_identity(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    dtype = np.dtype(dtype)
    if np.issubdtype(dtype, np.floating):
        return np.full(shape, -np.inf, dtype=dtype)
    return np.full(shape, np.iinfo(dtype).min, dtype=dtype)


def _full_ones(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    dtype = np.dtype(dtype)
    if np.issubdtype(dtype, np.integer):
        return np.full(shape, -1, dtype=dtype)  # all bits set
    raise TypeError("bitwise-and identity requires an integer dtype")


REGISTRY: dict[str, Operator] = {}


def register_operator(op: Operator) -> Operator:
    """Add an operator to the global registry (keyed by ``op.name``)."""
    if op.name in REGISTRY:
        raise ValueError(f"operator {op.name!r} already registered")
    REGISTRY[op.name] = op
    return op


def get_operator(name: str) -> Operator:
    """Look up a registered operator by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown operator {name!r}; known: {sorted(REGISTRY)}"
        ) from None


register_operator(Operator(
    name="add", fn=lambda a, u: a + u, identity=_zeros,
    idempotent=False, weight=_scale_weight))

register_operator(Operator(
    name="min", fn=np.minimum, identity=_full_min_identity,
    idempotent=True))

register_operator(Operator(
    name="max", fn=np.maximum, identity=_full_max_identity,
    idempotent=True))

register_operator(Operator(
    name="bitor", fn=np.bitwise_or, identity=_zeros, idempotent=True))

register_operator(Operator(
    name="bitand", fn=np.bitwise_and, identity=_full_ones,
    idempotent=True))

register_operator(Operator(
    name="union",
    fn=lambda a, u: a | u,
    identity=lambda shape, dtype: set(),
    idempotent=True))
