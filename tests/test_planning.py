"""Tests for offline-profile-guided deadline planning."""

import math

import pytest

from repro.apps.conv2d import build_conv2d_automaton, conv2d_precise
from repro.data.images import scene_image
from repro.metrics.planning import DeadlinePlanner
from repro.metrics.profiles import RuntimeAccuracyProfile
from repro.metrics.snr import snr_db


def synthetic_profile(points):
    p = RuntimeAccuracyProfile(label="cal")
    for t, s in points:
        p.add(t, s)
    return p


class TestBudgetLookup:
    def test_requires_calibration(self):
        with pytest.raises(RuntimeError, match="calibration"):
            DeadlinePlanner().budget_for(10.0)

    def test_rejects_sub_one_margin(self):
        with pytest.raises(ValueError):
            DeadlinePlanner(margin=0.9)

    def test_rejects_empty_profile(self):
        with pytest.raises(ValueError):
            DeadlinePlanner().calibrate(RuntimeAccuracyProfile())

    def test_budget_reads_profile_with_margin(self):
        planner = DeadlinePlanner(margin=1.5)
        planner.calibrate(synthetic_profile(
            [(0.2, 10.0), (0.5, 20.0), (1.0, math.inf)]))
        assert planner.budget_for(15.0) == pytest.approx(0.75)

    def test_worst_case_across_profiles(self):
        planner = DeadlinePlanner(margin=1.0)
        planner.calibrate(synthetic_profile([(0.3, 20.0)]))
        planner.calibrate(synthetic_profile([(0.6, 20.0)]))
        assert planner.budget_for(20.0) == pytest.approx(0.6)

    def test_unreached_target_falls_back_to_profile_end(self):
        planner = DeadlinePlanner(margin=1.0)
        planner.calibrate(synthetic_profile([(0.5, 12.0)]))
        assert planner.budget_for(40.0) == pytest.approx(0.5)


class TestEndToEnd:
    def test_calibrate_on_one_image_plan_for_another(self):
        """The profile measured on seed-A scenes transfers to seed-B
        scenes of the same class: the planned budget achieves the
        target (the anytime property absorbs the approximation error of
        the transfer)."""
        target = 18.0
        cal_image = scene_image(64, seed=21)
        cal_auto = build_conv2d_automaton(cal_image, chunks=16)
        cal_res = cal_auto.run_simulated(total_cores=8.0)
        planner = DeadlinePlanner(margin=1.3)
        planner.calibrate(cal_auto.profile(cal_res, total_cores=8.0))

        test_image = scene_image(64, seed=22)
        reference = conv2d_precise(test_image)
        result, budget = planner.run(
            lambda: build_conv2d_automaton(test_image, chunks=16),
            target, total_cores=8.0)
        records = result.output_records("filtered")
        assert records
        achieved = snr_db(records[-1].value, reference)
        assert achieved >= target - 3.0, \
            f"planned budget {budget:.2f}x missed badly: {achieved:.1f}"

    def test_let_it_run_longer_recovers_misses(self):
        """If the planned budget misses, a bigger margin only helps."""
        cal = scene_image(64, seed=23)
        auto = build_conv2d_automaton(cal, chunks=16)
        res = auto.run_simulated(total_cores=8.0)
        profile = auto.profile(res, total_cores=8.0)

        tight = DeadlinePlanner(margin=1.0)
        tight.calibrate(profile)
        loose = DeadlinePlanner(margin=2.0)
        loose.calibrate(profile)
        assert loose.budget_for(20.0) > tight.budget_for(20.0)
