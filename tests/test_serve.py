"""Tests for the serving layer (``repro.serve``) and the RunHandle
control-flow inversion it is built on.

Sizes and sleeps are tiny: these tests verify scheduler invariants —
no starvation under overload, preempt/cancel always leave a sealed
valid snapshot, shed requests get their own terminal state — not
performance.
"""

import math
import time

import numpy as np
import pytest

from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.executor import RunHandle
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.metrics.planning import DeadlinePlanner
from repro.metrics.profiles import RuntimeAccuracyProfile
from repro.serve import (SLO, AnytimeServer, FairSharePolicy,
                         MarginalGainPolicy, ServePolicy, Session,
                         SessionState, percentile, run_open_loop,
                         shutdown_all_servers, summarize)

pytestmark = [pytest.mark.serve, pytest.mark.timeout(120)]

LEVELS = 12
SLEEP_S = 0.004


def slow_automaton(levels=LEVELS, sleep_s=SLEEP_S, fail_at=None):
    """One iterative stage: level i sleeps then writes value i+1.

    Output versions are 1..levels in order, so any snapshot is valid
    iff its value equals its version — the test-side validity oracle.
    """
    b_in = VersionedBuffer("in")
    b_out = VersionedBuffer("out")

    def make_level(i):
        def fn(x):
            if fail_at is not None and i == fail_at:
                raise RuntimeError(f"injected failure at level {i}")
            time.sleep(sleep_s)
            return i + 1
        return AccuracyLevel(fn, 1.0)

    stage = IterativeStage("work", b_out, (b_in,),
                           [make_level(i) for i in range(levels)])
    return AnytimeAutomaton([stage], external={"in": 0})


def value_metric(value):
    """Quality metric: the staircase value itself, as 'dB'."""
    return float(value)


def assert_valid(snapshot, levels=LEVELS):
    """A snapshot is valid iff empty or value == version (staircase)."""
    if snapshot.version == 0:
        assert snapshot.value is None
        return
    assert 1 <= snapshot.version <= levels
    assert snapshot.value == snapshot.version


# ---------------------------------------------------------------------
# RunHandle: the preemptible-run API both wall-clock executors grew
# ---------------------------------------------------------------------

class TestRunHandle:
    def test_launch_returns_handle_and_result_completes(self):
        handle = slow_automaton().launch_threaded()
        assert isinstance(handle, RunHandle)
        result = handle.result(timeout_s=30.0)
        assert result.completed and not result.stopped_early
        assert handle.snapshot().value == LEVELS

    def test_pause_freezes_progress_resume_continues(self):
        handle = slow_automaton(levels=40).launch_threaded()
        while handle.snapshot().version < 2:
            time.sleep(0.002)
        handle.pause()
        assert handle.paused
        time.sleep(0.03)              # let in-flight command land
        frozen = handle.snapshot().version
        time.sleep(10 * SLEEP_S)
        assert handle.snapshot().version <= frozen + 1
        handle.resume()
        assert not handle.paused
        result = handle.result(timeout_s=30.0)
        assert result.completed
        assert handle.snapshot().version == 40

    def test_stop_while_paused_unwinds(self):
        handle = slow_automaton(levels=50).launch_threaded()
        while handle.snapshot().version < 1:
            time.sleep(0.002)
        handle.pause()
        handle.request_stop()
        result = handle.result(timeout_s=10.0)
        assert result.stopped_early
        assert_valid(handle.snapshot(), levels=50)

    def test_result_timeout_interrupts(self):
        handle = slow_automaton(levels=200, sleep_s=0.01).launch_threaded()
        result = handle.result(timeout_s=0.05)
        assert result.stopped_early and not result.completed
        assert handle.snapshot().version < 200

    def test_process_executor_pause_resume(self):
        handle = slow_automaton(levels=30).launch_processes()
        while handle.snapshot().version < 1:
            time.sleep(0.005)
        handle.pause()
        time.sleep(0.1)               # park workers + drain in flight
        frozen = handle.snapshot().version
        time.sleep(0.15)
        assert handle.snapshot().version <= frozen + 1
        handle.resume()
        result = handle.result(timeout_s=60.0)
        assert result.completed
        assert result.final_values["out"] == 30


# ---------------------------------------------------------------------
# Request lifecycle
# ---------------------------------------------------------------------

class TestLifecycle:
    def test_single_request_completes_precise(self):
        with AnytimeServer(slots=2, queue_limit=4) as server:
            session = server.submit(slow_automaton, metric=value_metric)
            result = session.result(timeout_s=30.0)
        assert result.state is SessionState.COMPLETED
        assert session.state is SessionState.COMPLETED
        assert result.snapshot.final
        assert result.snapshot.value == LEVELS
        assert result.snr_db == float(LEVELS)
        assert result.slo_met and not result.interrupted

    def test_cancel_leaves_sealed_valid_snapshot(self):
        with AnytimeServer(slots=1, queue_limit=4) as server:
            session = server.submit(
                lambda: slow_automaton(levels=60), metric=value_metric)
            while session.snapshot().version < 2:
                time.sleep(0.002)
            session.cancel()
            result = session.result(timeout_s=10.0)
        assert result.state is SessionState.CANCELLED
        assert result.interrupted
        assert result.snapshot.version >= 2
        assert_valid(result.snapshot, levels=60)
        assert result.run_result is not None
        assert result.run_result.stopped_early

    def test_cancel_queued_request_never_runs(self):
        with AnytimeServer(slots=1, queue_limit=4) as server:
            blocker = server.submit(lambda: slow_automaton(levels=100))
            queued = server.submit(slow_automaton)
            queued.cancel()
            result = queued.result(timeout_s=10.0)
            assert result.state is SessionState.CANCELLED
            assert result.snapshot.version == 0
            assert result.queue_s == result.latency_s
            blocker.cancel()
            blocker.result(timeout_s=10.0)

    def test_shed_is_a_distinct_terminal_state(self):
        with AnytimeServer(slots=1, queue_limit=1) as server:
            sessions = [server.submit(lambda: slow_automaton(levels=60))
                        for _ in range(5)]
            shed = [s for s in sessions
                    if s.state is SessionState.SHED]
            assert shed, "overload must shed beyond the queue bound"
            for s in shed:
                result = s.result(timeout_s=1.0)   # already terminal
                assert result.state is SessionState.SHED
                assert result.state is not SessionState.CANCELLED
                assert result.snapshot.version == 0
                assert not result.slo_met
            for s in sessions:
                s.cancel()
            assert server.drain(timeout_s=30.0)
        assert server.stats()["shed"] == len(shed)

    def test_deadline_slo_interrupts_with_valid_partial(self):
        deadline = 8 * SLEEP_S
        with AnytimeServer(slots=1, queue_limit=2) as server:
            session = server.submit(
                lambda: slow_automaton(levels=200),
                SLO(deadline_s=deadline), metric=value_metric)
            result = session.result(timeout_s=30.0)
        assert result.state is SessionState.COMPLETED
        assert result.interrupted
        assert 1 <= result.snapshot.version < 200
        assert_valid(result.snapshot, levels=200)
        assert result.latency_s < deadline * 10

    def test_target_db_slo_finishes_early(self):
        target = 4.0
        with AnytimeServer(slots=1, queue_limit=2) as server:
            session = server.submit(
                lambda: slow_automaton(levels=100),
                SLO(target_db=target), metric=value_metric)
            result = session.result(timeout_s=30.0)
        assert result.state is SessionState.COMPLETED
        assert result.snr_db is not None and result.snr_db >= target
        assert result.snapshot.version < 100
        assert result.slo_met

    def test_submit_after_shutdown_is_shed(self):
        server = AnytimeServer(slots=1).start()
        server.shutdown()
        session = server.submit(slow_automaton)
        assert session.result(timeout_s=1.0).state is SessionState.SHED

    def test_failing_builder_fails_only_that_request(self):
        def broken():
            raise ValueError("no automaton for you")

        with AnytimeServer(slots=2, queue_limit=4) as server:
            bad = server.submit(broken)
            good = server.submit(slow_automaton)
            assert good.result(timeout_s=30.0).state \
                is SessionState.COMPLETED
            result = bad.result(timeout_s=10.0)
        assert result.state is SessionState.FAILED
        assert result.errors and "ValueError" in result.errors[0]


# ---------------------------------------------------------------------
# Scheduler invariants
# ---------------------------------------------------------------------

@pytest.mark.check
class TestLeasedPreemptPins:
    @staticmethod
    def _leased_builder(tag, size=16, chunks=32, sleep_s=0.04):
        """A diffusive map automaton (leased on the process backend)
        with per-request buffer names so one Checker can watch the
        whole server without cross-request version collisions."""
        from repro.anytime.permutations import TreePermutation
        from repro.core.mapstage import MapStage

        img = np.arange(size * size,
                        dtype=np.float64).reshape(size, size)

        def fn(idx, im):
            time.sleep(sleep_s)
            return np.asarray(im).reshape(-1)[idx] * 2.0

        b_in = VersionedBuffer(f"in-{tag}")
        b_out = VersionedBuffer(f"out-{tag}")
        stage = MapStage(f"m-{tag}", b_out, (b_in,), fn,
                         shape=(size, size), dtype=np.float64,
                         permutation=TreePermutation(), chunks=chunks)
        return AnytimeAutomaton([stage], external={f"in-{tag}": img})

    def test_preempting_leased_stage_keeps_pins_balanced(self):
        """Regression for the lease protocol under the serving layer:
        preempt/resume of a process run whose worker holds a command
        lease (and un-acked fire-and-forget writes) must never unpin a
        slot twice or lose a pin — the checker's pin-balance invariant
        stays silent across the whole server trace."""
        from repro.check import Checker

        checker = Checker()
        with AnytimeServer(slots=1, queue_limit=4, executor="process",
                           quantum_s=0.05, tick_s=0.005,
                           trace=checker) as server:
            sessions = [
                server.submit(lambda t=t: self._leased_builder(t),
                              SLO(deadline_s=90.0), name=f"req-{t}")
                for t in range(2)]
            for s in sessions:
                assert s.wait(timeout_s=90.0), f"{s.name} never finished"
            assert server.counters["preemptions"] >= 1, \
                "the scenario must actually preempt the leased run"
            for s in sessions:
                assert s.state is SessionState.COMPLETED

        report = checker.report()
        pin_violations = [v for v in report.violations
                          if v.invariant == "pin-balance"]
        assert pin_violations == [], [v.describe()
                                      for v in pin_violations]


class TestSchedulerInvariants:
    def test_no_starvation_under_sustained_overload(self):
        n = 8
        with AnytimeServer(slots=1, queue_limit=n,
                           quantum_s=0.01) as server:
            sessions = [server.submit(lambda: slow_automaton(levels=6),
                                      metric=value_metric)
                        for _ in range(n)]
            assert server.drain(timeout_s=60.0)
        for session in sessions:
            result = session.result(timeout_s=1.0)
            assert result.state is SessionState.COMPLETED
            assert result.snapshot.value == 6

    def test_biased_policy_rescued_by_starvation_guard(self):
        class NeverVictor(ServePolicy):
            """Always ranks the session named 'victim' last."""
            def rank_ready(self, ready, now):
                return sorted(ready, key=lambda s: (s.name == "victim",
                                                    s._ready_since))

        with AnytimeServer(slots=1, queue_limit=10, quantum_s=0.01,
                           starvation_s=0.1,
                           policy=NeverVictor()) as server:
            victim = server.submit(lambda: slow_automaton(levels=4),
                                   name="victim")
            others = [server.submit(lambda: slow_automaton(levels=4))
                      for _ in range(5)]
            result = victim.result(timeout_s=60.0)
            assert result.state is SessionState.COMPLETED
            for other in others:
                other.result(timeout_s=60.0)

    def test_preemption_leaves_valid_snapshot_and_both_finish(self):
        with AnytimeServer(slots=1, queue_limit=4,
                           quantum_s=0.01) as server:
            a = server.submit(lambda: slow_automaton(levels=30),
                              name="a")
            b = server.submit(lambda: slow_automaton(levels=30),
                              name="b")
            deadline = time.monotonic() + 30.0
            while server.stats()["preemptions"] < 2:
                assert time.monotonic() < deadline, "no preemption seen"
                for s in (a, b):
                    assert_valid(s.snapshot(), levels=30)
                time.sleep(0.005)
            preempted = next(
                (s for s in (a, b)
                 if s.state is SessionState.PREEMPTED), None)
            if preempted is not None:
                assert_valid(preempted.snapshot(), levels=30)
            for s in (a, b):
                result = s.result(timeout_s=60.0)
                assert result.state is SessionState.COMPLETED
                assert result.snapshot.value == 30
            assert server.stats()["preemptions"] >= 2
            assert server.stats()["resumes"] >= 1

    def test_per_request_fault_isolation(self):
        with AnytimeServer(slots=2, queue_limit=6) as server:
            flaky = server.submit(
                lambda: slow_automaton(levels=8, fail_at=3),
                name="flaky")
            good = [server.submit(lambda: slow_automaton(levels=8),
                                  metric=value_metric)
                    for _ in range(3)]
            assert server.drain(timeout_s=60.0)
        flaky_result = flaky.result(timeout_s=1.0)
        # Default per-request policy degrades: the stage froze at its
        # last published version, which is still a valid approximation.
        assert flaky_result.degraded
        assert flaky_result.state in (SessionState.COMPLETED,
                                      SessionState.FAILED)
        if flaky_result.state is SessionState.COMPLETED:
            assert_valid(flaky_result.snapshot, levels=8)
        for session in good:
            result = session.result(timeout_s=1.0)
            assert result.state is SessionState.COMPLETED
            assert not result.degraded
            assert result.snapshot.value == 8


# ---------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------

def make_session(name="s", run_s=0.0, slo=None, last_snr=None):
    session = Session(sid=1, name=name, builder=lambda: None,
                      slo=slo or SLO(), metric=None,
                      submitted_at=0.0)
    session._run_s = run_s
    session._last_snr = last_snr
    return session


class TestMarginalGainPolicy:
    @staticmethod
    def profile():
        p = RuntimeAccuracyProfile(label="test")
        p.add(0.1, 5.0)
        p.add(0.3, 15.0)
        p.add(0.6, 22.0)
        p.add(1.0, 25.0)
        return p

    def test_fresh_request_outranks_flat_tail(self):
        policy = MarginalGainPolicy(self.profile(), baseline_wall_s=1.0)
        fresh = make_session("fresh", run_s=0.0)
        tail = make_session("tail", run_s=0.9)
        assert policy.gain_rate(fresh, now=0.0) \
            > policy.gain_rate(tail, now=0.0)
        assert policy.rank_ready([tail, fresh], now=0.0)[0] is fresh

    def test_met_target_has_zero_gain(self):
        policy = MarginalGainPolicy(self.profile(), baseline_wall_s=1.0)
        done = make_session("done", run_s=0.2,
                            slo=SLO(target_db=10.0), last_snr=12.0)
        assert policy.gain_rate(done, now=0.0) == 0.0

    def test_victim_is_lowest_gain_only_when_ready_gains_more(self):
        policy = MarginalGainPolicy(self.profile(), baseline_wall_s=1.0)
        climber = make_session("climber", run_s=0.25)
        tail = make_session("tail", run_s=0.9)
        fresh = make_session("fresh", run_s=0.0)
        assert policy.pick_victim([climber, tail], [fresh], 0.0) is tail
        # No ready work that gains more than every runner: no victim.
        tail2 = make_session("tail2", run_s=0.95)
        assert policy.pick_victim([fresh], [tail2], 0.0) is None

    def test_priority_scales_gain(self):
        policy = MarginalGainPolicy(self.profile(), baseline_wall_s=1.0)
        lo = make_session("lo", run_s=0.25, slo=SLO(priority=1.0))
        hi = make_session("hi", run_s=0.25, slo=SLO(priority=3.0))
        assert policy.gain_rate(hi, 0.0) \
            == pytest.approx(3 * policy.gain_rate(lo, 0.0))

    def test_infinite_profile_points_are_capped(self):
        p = self.profile()
        p.add(1.2, math.inf)
        policy = MarginalGainPolicy(p, baseline_wall_s=1.0)
        s = make_session("s", run_s=1.1)
        assert math.isfinite(policy.gain_rate(s, 0.0))


# ---------------------------------------------------------------------
# SLO compilation
# ---------------------------------------------------------------------

class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(deadline_s=0.0)
        with pytest.raises(ValueError):
            SLO(priority=0.0)

    def test_queue_wait_shrinks_in_run_deadline(self):
        from repro.core.controller import DeadlineStop
        stop = SLO(deadline_s=1.0).stop_condition(0.4, None)
        assert isinstance(stop, DeadlineStop)
        assert stop.deadline == pytest.approx(0.6)

    def test_both_objectives_compile_to_anyof(self):
        from repro.core.controller import AnyOf
        stop = SLO(deadline_s=1.0, target_db=20.0).stop_condition(
            0.0, value_metric)
        assert isinstance(stop, AnyOf)

    def test_no_objectives_compile_to_none(self):
        assert SLO().stop_condition(0.0, value_metric) is None


# ---------------------------------------------------------------------
# Workload + summary
# ---------------------------------------------------------------------

class TestWorkload:
    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert math.isnan(percentile([], 50))

    def test_summarize_requires_terminal_sessions(self):
        with AnytimeServer(slots=1) as server:
            session = server.submit(lambda: slow_automaton(levels=100))
            with pytest.raises(RuntimeError, match="not terminal"):
                summarize([session])
            session.cancel()
            session.result(timeout_s=10.0)

    def test_open_loop_is_reproducible_and_ordered(self):
        with AnytimeServer(slots=2, queue_limit=8) as server:
            sessions = run_open_loop(
                server, lambda i: lambda: slow_automaton(levels=3),
                n_requests=5, rate_hz=500.0, seed=42)
            assert server.drain(timeout_s=30.0)
        assert [s.name for s in sessions] \
            == [f"req-{i}" for i in range(5)]


# ---------------------------------------------------------------------
# Acceptance: 50 requests, 4 slots, shedding, all snapshots valid
# ---------------------------------------------------------------------

class TestAcceptance:
    def test_fifty_requests_four_slots_with_shedding(self):
        n = 50
        with AnytimeServer(slots=4, queue_limit=6,
                           quantum_s=0.01) as server:
            sessions = run_open_loop(
                server, lambda i: lambda: slow_automaton(levels=8),
                n_requests=n, rate_hz=400.0,
                slo=SLO(deadline_s=5.0), metric=value_metric, seed=7)
            assert server.drain(timeout_s=120.0)

        assert len(sessions) == n
        for session in sessions:
            assert session.done, f"{session.name} not terminal"
            result = session.result(timeout_s=1.0)
            assert_valid(result.snapshot, levels=8)

        summary = summarize(sessions)
        assert summary["requests"] == n
        assert summary["shed"] > 0, \
            "offered load above capacity must shed beyond the queue bound"
        assert summary["completed"] + summary["shed"] \
            + summary["failed"] == n
        assert summary["failed"] == 0
        assert summary["throughput_rps"] > 0
        assert summary["latency_p99_s"] >= summary["latency_p50_s"] > 0

    def test_serve_bench_payload_shape(self, tmp_path):
        from repro.serve.bench import run_serve_bench

        data = run_serve_bench(app="2dconv", size=16, n_requests=5,
                               slots=2, queue_limit=3, loads=(200.0,),
                               policy="gain", seed=3)
        assert data["bench"] == "serve"
        assert data["policy"] == "gain"
        assert len(data["sweep"]) == 1
        row = data["sweep"][0]
        for key in ("offered_rps", "throughput_rps", "latency_p50_s",
                    "latency_p99_s", "shed", "snr_at_interrupt_mean_db",
                    "slo_attainment"):
            assert key in row
        import json
        path = tmp_path / "BENCH_serve.json"
        path.write_text(json.dumps(data))
        assert json.loads(path.read_text())["slots"] == 2


# ---------------------------------------------------------------------
# Planner executor choice (bugfix)
# ---------------------------------------------------------------------

class TestPlannerExecutorChoice:
    @staticmethod
    def planner():
        profile = RuntimeAccuracyProfile(label="calib")
        profile.add(0.2, 10.0)
        profile.add(0.6, 30.0)
        profile.add(1.0, math.inf)
        p = DeadlinePlanner(margin=1.2)
        p.calibrate(profile)
        return p

    def test_threaded_executor_runs_to_wall_budget(self):
        planner = self.planner()
        result, budget = planner.run(
            lambda: slow_automaton(levels=100), target_db=10.0,
            executor="threaded", baseline_wall_s=0.1)
        assert budget == pytest.approx(0.2 * 1.2)
        assert result.stopped_early
        assert result.output_records("out"), \
            "stopped run must still have published versions"

    def test_wall_executor_requires_baseline(self):
        with pytest.raises(ValueError, match="baseline_wall_s"):
            self.planner().run(slow_automaton, target_db=10.0,
                               executor="threaded")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            self.planner().run(slow_automaton, target_db=10.0,
                               executor="quantum")

    def test_simulated_default_unchanged(self):
        def graded_automaton():
            # Early levels cost a fraction of the precise level, so the
            # planned virtual deadline (0.24 x baseline) lands after
            # the first approximation — the classic anytime shape.
            b_in = VersionedBuffer("in")
            b_out = VersionedBuffer("out")
            stage = IterativeStage(
                "work", b_out, (b_in,),
                [AccuracyLevel(lambda x: 1, 0.1),
                 AccuracyLevel(lambda x: 2, 0.5),
                 AccuracyLevel(lambda x: 3, 1.0)])
            return AnytimeAutomaton([stage], external={"in": 0})

        result, budget = self.planner().run(
            graded_automaton, target_db=10.0, total_cores=4.0)
        assert budget == pytest.approx(0.2 * 1.2)
        assert result.stopped_early
        records = result.output_records("out")
        assert records and records[-1].value == 1


# ---------------------------------------------------------------------
# Watchdog interplay (conftest satellite)
# ---------------------------------------------------------------------

class TestWatchdogInterplay:
    @pytest.mark.timeout(0)
    def test_timeout_zero_disarms_for_idle_server(self):
        import signal
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0
        with AnytimeServer(slots=1) as server:
            time.sleep(0.05)          # intentionally idle server
            assert server.stats()["submitted"] == 0

    def test_shutdown_all_servers_reaps_leaked_server(self):
        server = AnytimeServer(slots=1).start()
        session = server.submit(lambda: slow_automaton(levels=200))
        assert shutdown_all_servers(timeout_s=5.0) >= 1
        result = session.result(timeout_s=5.0)
        assert result.state is SessionState.CANCELLED

    def test_no_thread_leak_after_shutdown(self):
        import threading
        with AnytimeServer(slots=2, queue_limit=4) as server:
            sessions = [server.submit(lambda: slow_automaton(levels=4))
                        for _ in range(4)]
            assert server.drain(timeout_s=30.0)
        for session in sessions:
            session.result(timeout_s=1.0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = [t for t in threading.enumerate()
                      if t.name.startswith(("anytime-server", "stage-"))]
            if not leaked:
                break
            time.sleep(0.01)
        assert not leaked, f"leaked threads: {leaked}"


def test_numpy_payloads_roundtrip_through_server(small_image):
    """Serving real array payloads (not just scalars) stays valid."""
    from repro.apps.conv2d import build_conv2d_automaton

    image = small_image[:24, :24]
    auto = build_conv2d_automaton(image)
    ref = auto.precise_output()
    with AnytimeServer(slots=2, queue_limit=4) as server:
        session = server.submit(lambda: build_conv2d_automaton(image))
        result = session.result(timeout_s=60.0)
    assert result.state is SessionState.COMPLETED
    assert np.allclose(np.asarray(result.snapshot.value,
                                  dtype=np.float64),
                       np.asarray(ref, dtype=np.float64))
