"""Tests for the drowsy-SRAM approximate storage model."""

import numpy as np
import pytest

from repro.hw.sram import (DEFAULT_VOLTAGE_LADDER, DrowsySram,
                           VoltageLevel, flip_bits)


class TestVoltageLevel:
    def test_ladder_is_ordered_nominal_last(self):
        probs = [lv.read_upset_prob for lv in DEFAULT_VOLTAGE_LADDER]
        assert probs == sorted(probs, reverse=True)
        assert DEFAULT_VOLTAGE_LADDER[-1].read_upset_prob == 0.0

    def test_lower_voltage_cheaper(self):
        energies = [lv.energy_per_access for lv in DEFAULT_VOLTAGE_LADDER]
        assert energies == sorted(energies)

    def test_paper_energy_saving_anchor(self):
        """EnerJ [19]: ~90% supply power saving at 0.001% upsets."""
        risky = DEFAULT_VOLTAGE_LADDER[0]
        assert risky.read_upset_prob == pytest.approx(1e-5)
        assert risky.energy_per_access <= 0.15

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            VoltageLevel("x", 1.5, 1.0)

    def test_rejects_bad_energy(self):
        with pytest.raises(ValueError):
            VoltageLevel("x", 0.0, 0.0)


class TestFlipBits:
    def test_zero_probability_is_identity_copy(self, rng):
        data = np.arange(100, dtype=np.int64)
        out = flip_bits(data, 0.0, 8, rng)
        assert np.array_equal(out, data)
        assert out is not data

    def test_probability_one_flips_every_bit(self, rng):
        out = flip_bits(np.zeros(50, dtype=np.int64), 1.0, 8, rng)
        assert (out == 255).all()

    def test_flip_count_statistics(self):
        rng = np.random.default_rng(0)
        data = np.zeros(10_000, dtype=np.int64)
        out = flip_bits(data, 0.01, 8, rng)
        flips = int(np.bitwise_count(out.astype(np.uint64)).sum())
        expected = 10_000 * 8 * 0.01
        assert 0.5 * expected < flips < 1.5 * expected

    def test_only_low_bits_touched(self, rng):
        out = flip_bits(np.zeros(1000, dtype=np.int64), 0.5, 4, rng)
        assert (out < 16).all()

    def test_deterministic_under_seed(self):
        data = np.arange(256, dtype=np.int64)
        a = flip_bits(data, 1e-3, 8, np.random.default_rng(7))
        b = flip_bits(data, 1e-3, 8, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_rejects_floats(self, rng):
        with pytest.raises(TypeError):
            flip_bits(np.zeros(4), 0.1, 8, rng)

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            flip_bits(np.zeros(4, np.int64), -0.1, 8, rng)

    def test_empty_array(self, rng):
        out = flip_bits(np.zeros(0, np.int64), 0.5, 8, rng)
        assert out.size == 0


class TestDrowsySram:
    def test_nominal_reads_are_exact(self):
        sram = DrowsySram(seed=1)
        data = np.arange(256, dtype=np.int64)
        sram.write(data)
        assert np.array_equal(sram.read(), data)
        assert sram.bit_flips == 0

    def test_low_voltage_reads_corrupt(self):
        sram = DrowsySram(level=VoltageLevel("hot", 0.01, 0.1), seed=2)
        data = np.zeros(10_000, dtype=np.int64)
        sram.write(data)
        out = sram.read()
        assert (out != 0).any()
        assert sram.bit_flips > 0

    def test_reads_are_destructive(self):
        """Paper III-B1: a corrupted bit stays corrupted even after
        raising the voltage."""
        sram = DrowsySram(level=VoltageLevel("hot", 0.05, 0.1), seed=3)
        sram.write(np.zeros(5000, dtype=np.int64))
        sram.read()
        corrupted = sram.stored
        sram.set_level(DEFAULT_VOLTAGE_LADDER[-1])   # nominal
        assert np.array_equal(sram.read(), corrupted)

    def test_flush_restores_precise_values(self):
        sram = DrowsySram(level=VoltageLevel("hot", 0.05, 0.1), seed=4)
        data = np.arange(5000, dtype=np.int64) % 256
        sram.write(data)
        sram.read()
        sram.flush(data)
        assert np.array_equal(sram.stored, data)

    def test_energy_accounting_scales_with_level(self):
        data = np.zeros(100, dtype=np.int64)
        cheap = DrowsySram(level=DEFAULT_VOLTAGE_LADDER[0], seed=5)
        cheap.write(data)
        cheap.read()
        costly = DrowsySram(level=DEFAULT_VOLTAGE_LADDER[-1], seed=5)
        costly.write(data)
        costly.read()
        assert cheap.energy < costly.energy

    def test_read_before_write_raises(self):
        with pytest.raises(RuntimeError):
            DrowsySram().read()

    def test_write_rejects_oversized_values(self):
        sram = DrowsySram(bits_per_word=8)
        with pytest.raises(ValueError):
            sram.write(np.array([256]))
        with pytest.raises(ValueError):
            sram.write(np.array([-1]))

    def test_write_rejects_floats(self):
        with pytest.raises(TypeError):
            DrowsySram().write(np.array([1.5]))
