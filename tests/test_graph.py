"""Tests for automaton graph construction and validation."""

import numpy as np
import pytest

from repro.core.buffer import VersionedBuffer
from repro.core.channel import UpdateChannel
from repro.core.graph import AutomatonGraph, GraphError
from repro.core.stage import PreciseStage
from repro.core.syncstage import SynchronousStage


def precise(name, out, ins, fn=lambda *a: 0, cost=1.0):
    return PreciseStage(name, out, tuple(ins), fn, cost=cost)


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="at least one"):
            AutomatonGraph([])

    def test_duplicate_stage_names_rejected(self):
        b1, b2 = VersionedBuffer("a"), VersionedBuffer("b")
        with pytest.raises(GraphError, match="duplicate"):
            AutomatonGraph([precise("s", b1, ()), precise("s", b2, ())])

    def test_property2_multiple_writers_rejected(self):
        """Two stages writing one buffer violate Property 2; the buffer
        itself rejects the second registration."""
        b = VersionedBuffer("shared")
        precise("f", b, ())
        with pytest.raises(ValueError, match="Property 2"):
            precise("g", b, ())

    def test_cycle_rejected(self):
        b1, b2 = VersionedBuffer("a"), VersionedBuffer("b")
        f = precise("f", b1, (b2,))
        g = precise("g", b2, (b1,))
        with pytest.raises(GraphError, match="cycle"):
            AutomatonGraph([f, g])

    def test_self_loop_rejected(self):
        b = VersionedBuffer("a")
        with pytest.raises(GraphError, match="cycle"):
            AutomatonGraph([PreciseStage("f", b, (b,), lambda x: x,
                                         cost=1.0)])

    def test_unconsumed_channel_rejected(self):
        b = VersionedBuffer("a")
        ch = UpdateChannel("ch")
        f = PreciseStage("f", b, (), lambda: 0, cost=1.0)
        f.emit_to = ch
        with pytest.raises(GraphError, match="nobody"):
            AutomatonGraph([f])

    def test_unproduced_channel_rejected(self):
        b = VersionedBuffer("a")
        ch = UpdateChannel("ch")
        g = SynchronousStage("g", b, ch, lambda: 0,
                             lambda acc, x: acc, lambda x: 1.0,
                             lambda fv: fv, 1.0)
        with pytest.raises(GraphError, match="nobody"):
            AutomatonGraph([g])


class TestTopology:
    def build_diamond(self):
        """The paper's Figure 1 shape: f -> (g, h) -> i."""
        b_in = VersionedBuffer("in")
        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        b_h = VersionedBuffer("H")
        b_o = VersionedBuffer("O")
        f = precise("f", b_f, (b_in,), lambda x: x + 1, cost=4.0)
        g = precise("g", b_g, (b_f,), lambda F: F * 2, cost=2.0)
        h = precise("h", b_h, (b_f,), lambda F: F * 3, cost=2.0)
        i = precise("i", b_o, (b_g, b_h), lambda G, H: G + H, cost=1.0)
        return AutomatonGraph([i, h, g, f]), b_in

    def test_topological_order(self):
        graph, _ = self.build_diamond()
        order = [s.name for s in graph.topological_order()]
        assert order.index("f") < order.index("g")
        assert order.index("f") < order.index("h")
        assert order.index("g") < order.index("i")
        assert order.index("h") < order.index("i")

    def test_sources_and_terminals(self):
        graph, _ = self.build_diamond()
        assert [s.name for s in graph.source_stages()] == ["f"]
        assert [s.name for s in graph.terminal_stages()] == ["i"]
        assert graph.terminal_buffer().name == "O"

    def test_producers_consumers(self):
        graph, _ = self.build_diamond()
        assert graph.producer_of("F").name == "f"
        assert graph.producer_of("in") is None
        assert sorted(s.name for s in graph.consumers_of("F")) == \
            ["g", "h"]

    def test_run_precise_follows_dependencies(self):
        graph, _ = self.build_diamond()
        values = graph.run_precise({"in": 10})
        assert values["F"] == 11
        assert values["O"] == 11 * 2 + 11 * 3

    def test_run_precise_missing_external_raises(self):
        graph, _ = self.build_diamond()
        with pytest.raises(GraphError, match="no value"):
            graph.run_precise({})

    def test_baseline_cost_sums_precise_costs(self):
        graph, _ = self.build_diamond()
        assert graph.baseline_cost() == pytest.approx(9.0)

    def test_buffers_collects_all(self):
        graph, _ = self.build_diamond()
        assert sorted(graph.buffers) == ["F", "G", "H", "O", "in"]

    def test_multiple_terminals_reported(self):
        b_in = VersionedBuffer("in")
        b_a, b_b = VersionedBuffer("A"), VersionedBuffer("B")
        g = AutomatonGraph([precise("a", b_a, (b_in,)),
                            precise("b", b_b, (b_in,))])
        with pytest.raises(GraphError, match="one terminal"):
            g.terminal_buffer()
