"""TCP transport conformance for the serving fleet.

Two layers:

* **Wire-protocol negatives** — the length-prefixed JSON framing must
  fail *closed*: a declared length beyond the bound is rejected before
  any allocation, garbage payloads produce a structured in-band
  ``error`` frame, and truncation at any byte boundary reads as clean
  EOF.  A real TCP worker fed each of these must reply or exit — never
  hang (every test runs under the watchdog with short socket
  timeouts).

* **Transport equivalence** — the same duplicate-heavy workload on an
  AF_UNIX (fork) fleet and on a two-worker localhost TCP fleet must
  seal bit-identical ``value_digest`` sets per seed: the anytime
  guarantee cannot depend on which socket family carried the frames.
"""

import socket
import struct

import pytest

from repro.serve.fleet import (FrameError, MAX_FRAME, recv_msg,
                               send_msg)
from repro.serve.router import FleetRouter, summarize_fleet
from repro.serve.transport import (parse_endpoint,
                                   spawn_local_tcp_worker)

pytestmark = [pytest.mark.serve, pytest.mark.timeout(180)]

SLO_OK = {"deadline_s": 60.0}
_LEN = struct.Struct(">I")


# -- frame bound / parse unit tests (no worker involved) ----------------

class TestRecvMsgBound:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(10.0)
        b.settimeout(10.0)
        return a, b

    def test_oversized_declared_length_rejected_before_payload(self):
        a, b = self._pair()
        try:
            # header only — no payload bytes exist; the bound must trip
            # on the declared length alone, before any allocation
            a.sendall(_LEN.pack(MAX_FRAME + 1))
            with pytest.raises(FrameError, match="exceeds"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_custom_max_frame_parameter(self):
        a, b = self._pair()
        try:
            send_msg(a, {"op": "stats", "pad": "x" * 64})
            with pytest.raises(FrameError, match="max_frame 16"):
                recv_msg(b, max_frame=16)
        finally:
            a.close()
            b.close()

    def test_frame_within_custom_bound_passes(self):
        a, b = self._pair()
        try:
            send_msg(a, {"op": "stats"})
            assert recv_msg(b, max_frame=64) == {"op": "stats"}
        finally:
            a.close()
            b.close()

    def test_garbage_payload_raises_frame_error(self):
        a, b = self._pair()
        try:
            payload = b"this is not json"
            a.sendall(_LEN.pack(len(payload)) + payload)
            with pytest.raises(FrameError, match="not JSON"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_non_object_json_raises_frame_error(self):
        a, b = self._pair()
        try:
            payload = b"[1, 2, 3]"
            a.sendall(_LEN.pack(len(payload)) + payload)
            with pytest.raises(FrameError, match="not a JSON object"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_truncated_length_prefix_is_clean_eof(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00")   # 2 of 4 header bytes
            a.close()
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_mid_frame_disconnect_is_clean_eof(self):
        a, b = self._pair()
        try:
            a.sendall(_LEN.pack(100) + b"x" * 10)
            a.close()
            assert recv_msg(b) is None
        finally:
            b.close()


# -- the same negatives against a live TCP worker -----------------------

def _connect(endpoint):
    sock = socket.create_connection(endpoint, timeout=10.0)
    sock.settimeout(10.0)
    return sock


@pytest.fixture
def tcp_worker():
    process, endpoint = spawn_local_tcp_worker(
        {"slots": 1, "queue_limit": 4})
    yield process, endpoint
    if process.is_alive():
        process.terminate()
    process.join(timeout=10.0)


class TestWireNegativesAgainstWorker:
    def test_stats_round_trip_sanity(self, tcp_worker):
        process, endpoint = tcp_worker
        sock = _connect(endpoint)
        try:
            send_msg(sock, {"op": "stats", "rid": 1})
            reply = recv_msg(sock)
            assert reply["op"] == "stats"
            assert reply["stats"]["running"] == 0
            send_msg(sock, {"op": "shutdown"})
            assert recv_msg(sock) == {"op": "bye"}
        finally:
            sock.close()
        process.join(timeout=10.0)
        assert process.exitcode == 0

    def test_oversized_length_gets_error_frame_then_eof(self, tcp_worker):
        process, endpoint = tcp_worker
        sock = _connect(endpoint)
        try:
            sock.sendall(_LEN.pack(MAX_FRAME + 1))
            reply = recv_msg(sock)
            assert reply["op"] == "error"
            assert "exceeds" in reply["error"]
            assert recv_msg(sock) is None   # worker closed after error
        finally:
            sock.close()
        process.join(timeout=10.0)
        assert process.exitcode == 0

    def test_garbage_json_gets_error_frame_then_eof(self, tcp_worker):
        process, endpoint = tcp_worker
        sock = _connect(endpoint)
        try:
            payload = b"}{ not json at all"
            sock.sendall(_LEN.pack(len(payload)) + payload)
            reply = recv_msg(sock)
            assert reply["op"] == "error"
            assert "JSON" in reply["error"]
            assert recv_msg(sock) is None
        finally:
            sock.close()
        process.join(timeout=10.0)
        assert process.exitcode == 0

    def test_truncated_prefix_disconnect_exits_worker(self, tcp_worker):
        process, endpoint = tcp_worker
        sock = _connect(endpoint)
        sock.sendall(b"\x00")        # 1 of 4 header bytes
        sock.close()
        process.join(timeout=10.0)   # clean EOF — worker must exit
        assert process.exitcode == 0

    def test_mid_frame_disconnect_exits_worker(self, tcp_worker):
        process, endpoint = tcp_worker
        sock = _connect(endpoint)
        sock.sendall(_LEN.pack(4096) + b"y" * 100)
        sock.close()
        process.join(timeout=10.0)
        assert process.exitcode == 0


# -- transport equivalence: AF_UNIX vs TCP digests ----------------------

def _digest_map(requests):
    digests = {}
    for request in requests:
        out = request.result(timeout_s=0.0)
        if out["state"] == "completed" and out.get("final"):
            digests.setdefault(request.seed, set()).add(
                out["value_digest"])
    return digests


class TestTransportEquivalence:
    SPECS = [("dwt53", 16, seed) for seed in (0, 1, 2)] * 2

    def _run(self, fleet):
        requests = [fleet.submit(app, size=size, seed=seed, slo=SLO_OK)
                    for app, size, seed in self.SPECS]
        assert fleet.drain(timeout_s=90.0)
        summary = summarize_fleet(requests)
        assert summary["completed"] == len(self.SPECS)
        assert summary["failed"] == 0
        return _digest_map(requests)

    def test_tcp_fleet_seals_identical_digests(self):
        config = {"slots": 2, "queue_limit": 32}
        with FleetRouter(workers=2, worker_config=config) as fleet:
            unix_digests = self._run(fleet)

        procs, endpoints = [], []
        try:
            for _ in range(2):
                process, endpoint = spawn_local_tcp_worker(config)
                procs.append(process)
                endpoints.append(endpoint)
            with FleetRouter(endpoints=endpoints,
                             worker_config=config) as fleet:
                tcp_digests = self._run(fleet)
        finally:
            for process in procs:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=10.0)

        assert set(unix_digests) == {0, 1, 2}
        for seed, seen in unix_digests.items():
            assert len(seen) == 1, (seed, seen)
        assert unix_digests == tcp_digests


class TestParseEndpoint:
    def test_round_trip(self):
        assert parse_endpoint("example.com:9701") == ("example.com",
                                                      9701)

    @pytest.mark.parametrize("bad", ["nohost", ":9", "h:", "h:x",
                                     "9701"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)
