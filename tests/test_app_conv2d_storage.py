"""Tests for the approximate-storage (drowsy SRAM) conv2d automaton."""

import math

import numpy as np
import pytest

from repro.apps.conv2d import conv2d_precise
from repro.apps.conv2d_storage import (build_conv2d_sram_automaton,
                                       sram_energy_report)
from repro.hw.sram import DEFAULT_VOLTAGE_LADDER, VoltageLevel
from repro.metrics.snr import snr_db

HOT_LADDER = (VoltageLevel("hot", 1e-3, 0.05),
              VoltageLevel("warm", 1e-4, 0.2),
              VoltageLevel("nominal", 0.0, 1.0))


class TestValidation:
    def test_final_level_must_be_nominal(self, small_image):
        bad = (VoltageLevel("a", 1e-3, 0.1),)
        with pytest.raises(ValueError, match="nominal"):
            build_conv2d_sram_automaton(small_image, ladder=bad)

    def test_ladder_must_increase_accuracy(self, small_image):
        bad = (VoltageLevel("a", 1e-5, 0.1),
               VoltageLevel("b", 1e-3, 0.2),
               VoltageLevel("c", 0.0, 1.0))
        with pytest.raises(ValueError, match="non-increasing"):
            build_conv2d_sram_automaton(small_image, ladder=bad)


class TestExecution:
    def test_final_version_is_precise(self, small_image):
        """The nominal (zero-upset) last level, after a flush, computes
        the exact blur despite earlier corruption."""
        auto = build_conv2d_sram_automaton(small_image,
                                           ladder=HOT_LADDER, seed=2)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("filtered")
        assert np.array_equal(final.value, conv2d_precise(small_image))

    def test_versions_improve_statistically(self, small_image):
        auto = build_conv2d_sram_automaton(small_image,
                                           ladder=HOT_LADDER, seed=3)
        ref = conv2d_precise(small_image)
        res = auto.run_simulated(total_cores=8.0)
        snrs = [snr_db(r.value, ref)
                for r in res.output_records("filtered")]
        assert len(snrs) == 3
        assert snrs[0] < snrs[1] < snrs[2]
        assert math.isinf(snrs[2])

    def test_low_voltage_levels_show_corruption(self, small_image):
        auto = build_conv2d_sram_automaton(small_image,
                                           ladder=HOT_LADDER, seed=4)
        res = auto.run_simulated(total_cores=8.0)
        first = res.output_records("filtered")[0]
        ref = conv2d_precise(small_image)
        assert not np.array_equal(first.value, ref)
        assert auto.sram.bit_flips > 0

    def test_default_ladder_runs(self, small_image):
        auto = build_conv2d_sram_automaton(small_image, seed=5)
        res = auto.run_simulated(total_cores=8.0)
        assert res.completed
        assert len(res.output_records("filtered")) == \
            len(DEFAULT_VOLTAGE_LADDER)

    def test_deterministic_under_seed(self, small_image):
        outs = []
        for _ in range(2):
            auto = build_conv2d_sram_automaton(small_image,
                                               ladder=HOT_LADDER,
                                               seed=6)
            res = auto.run_simulated(total_cores=8.0)
            outs.append(res.output_records("filtered")[0].value)
        assert np.array_equal(outs[0], outs[1])


class TestEnergyReport:
    def test_low_voltage_cheaper(self, small_image):
        rows = sram_energy_report(small_image)
        by_name = {name: rel for name, _, rel in rows}
        assert by_name["0.001%"] < by_name["0.00001%"] < \
            by_name["nominal"]

    def test_paper_anchor_90_percent_saving(self, small_image):
        rows = sram_energy_report(small_image)
        by_name = {name: rel for name, _, rel in rows}
        assert by_name["0.001%"] == pytest.approx(0.10)
        assert by_name["nominal"] == pytest.approx(1.0)
