"""Sharded serving fleet (``repro.serve.fleet`` / ``router``).

Workers are real forked processes behind stdlib sockets, so these tests
keep inputs tiny and assert protocol outcomes, not performance: sticky
placement sends duplicates to one worker (where they coalesce), a dead
worker's in-flight requests re-dispatch to survivors, sheds retry once
elsewhere, and every result carries a value digest so bit-identity can
be asserted across the wire.
"""

import time

import pytest

from repro.serve.bench import compare_serve_baseline
from repro.serve.fleet import spec_key, value_digest
from repro.serve.router import FleetRouter, summarize_fleet

pytestmark = [pytest.mark.serve, pytest.mark.timeout(180)]

SLO_OK = {"deadline_s": 60.0}


def tiny_fleet(workers=2, respawn=True, **config):
    config.setdefault("slots", 2)
    config.setdefault("queue_limit", 32)
    return FleetRouter(workers=workers, worker_config=config,
                       respawn=respawn)


class TestFleetRoundTrip:
    def test_duplicates_coalesce_and_all_complete(self):
        with tiny_fleet(workers=2, memo_ttl_s=0.0) as fleet:
            requests = []
            for i in range(20):
                app = "2dconv" if i % 2 == 0 else "dwt53"
                requests.append(fleet.submit(app, size=16, seed=i % 2,
                                             slo=SLO_OK))
                time.sleep(0.002)
            assert fleet.drain(timeout_s=90.0)
            summary = summarize_fleet(requests)
        assert summary["completed"] == 20
        assert summary["failed"] == 0
        assert summary["coalesced"] + summary["memo_hits"] > 0

    def test_same_key_lands_on_same_worker(self):
        with tiny_fleet(workers=3) as fleet:
            requests = [fleet.submit("dwt53", size=16, seed=0,
                                     slo=SLO_OK) for _ in range(6)]
            assert fleet.drain(timeout_s=90.0)
        workers = {r.result(0.0)["worker"] for r in requests}
        assert len(workers) == 1

    def test_distinct_keys_spread_across_workers(self):
        with tiny_fleet(workers=2) as fleet:
            requests = [fleet.submit("dwt53", size=16, seed=i,
                                     slo=SLO_OK) for i in range(12)]
            assert fleet.drain(timeout_s=90.0)
            summary = summarize_fleet(requests)
        assert summary["completed"] == 12
        assert len(summary["workers_used"]) == 2

    def test_final_values_bit_identical_across_duplicates(self):
        """Acceptance: coalesced subscribers' outputs are bit-identical
        to uncoalesced runs of the same spec (digests must agree even
        across workers and coalesce on/off)."""
        digests = {}
        for coalesce in (True, False):
            with tiny_fleet(workers=2, coalesce=coalesce) as fleet:
                requests = [fleet.submit("dwt53", size=16, seed=0,
                                         slo=SLO_OK) for _ in range(4)]
                assert fleet.drain(timeout_s=90.0)
            finals = {r.result(0.0)["value_digest"] for r in requests
                      if r.result(0.0)["final"]}
            assert len(finals) == 1, finals
            digests[coalesce] = finals.pop()
        assert digests[True] == digests[False]

    def test_fleet_stats_aggregate(self):
        with tiny_fleet(workers=2) as fleet:
            requests = [fleet.submit("dwt53", size=16, seed=i % 3,
                                     slo=SLO_OK) for i in range(9)]
            assert fleet.drain(timeout_s=90.0)
            stats = fleet.aggregate_stats()
        assert stats["workers"] == 2 and stats["alive"] == 2
        assert len(stats["per_worker"]) == 2
        assert stats["totals"]["completed"] == 9
        assert stats["router"]["dispatched"] == 9
        for r in requests:
            r.result(timeout_s=0.0)


class TestFailover:
    """Pure failover mode (respawn=False): a dead worker is not
    replaced, its in-flight specs re-dispatch to survivors.  Re-spawn
    and checkpoint migration are covered in test_ckpt.py."""

    def test_dead_worker_requests_redispatch_to_survivors(self):
        with tiny_fleet(workers=3, respawn=False) as fleet:
            requests = [fleet.submit("2dconv", size=24, seed=i % 3,
                                     slo=SLO_OK) for i in range(9)]
            time.sleep(0.05)
            victim = next((l for l in fleet._links if l.inflight),
                          fleet._links[0])
            victim.process.terminate()
            assert fleet.drain(timeout_s=90.0)
            summary = summarize_fleet(requests)
            survivors = fleet.alive_workers()
        assert summary["failed"] == 0
        assert summary["completed"] == 9
        assert fleet.counters["worker_deaths"] == 1
        assert survivors == 2

    def test_last_worker_death_fails_cleanly(self):
        with tiny_fleet(workers=1, respawn=False) as fleet:
            requests = [fleet.submit("2dconv", size=24, seed=i,
                                     slo=SLO_OK) for i in range(4)]
            time.sleep(0.05)
            fleet._links[0].process.terminate()
            assert fleet.drain(timeout_s=30.0)
        for r in requests:
            outcome = r.result(timeout_s=0.0)
            assert outcome["state"] in ("failed", "completed")
        assert any(r.result(0.0)["state"] == "failed"
                   for r in requests)

    def test_submit_after_total_death_fails_immediately(self):
        with tiny_fleet(workers=1, respawn=False) as fleet:
            fleet._links[0].process.terminate()
            time.sleep(0.2)
            request = fleet.submit("dwt53", size=16, slo=SLO_OK)
            outcome = request.result(timeout_s=10.0)
        assert outcome["state"] == "failed"


class TestBackpressure:
    def test_shed_requests_retry_once_then_resolve(self):
        config = {"slots": 1, "queue_limit": 1, "coalesce": False}
        with tiny_fleet(workers=2, **config) as fleet:
            requests = [fleet.submit("dwt53", size=16, seed=i,
                                     slo=SLO_OK) for i in range(12)]
            assert fleet.drain(timeout_s=90.0)
            summary = summarize_fleet(requests)
        assert summary["failed"] == 0
        assert summary["completed"] + summary["shed"] == 12
        # every terminal shed was first retried on the other worker
        if summary["shed"]:
            assert fleet.counters["shed_retries"] > 0


class TestSpecIdentity:
    def test_spec_key_is_stable_and_content_addressed(self):
        assert spec_key("dwt53", 16, 0) == spec_key("dwt53", 16, 0)
        assert spec_key("dwt53", 16, 0) != spec_key("dwt53", 16, 1)
        assert spec_key("dwt53", 16, 0) != spec_key("dwt53", 32, 0)
        assert spec_key("dwt53", 16, 0).startswith("dwt53:")

    def test_value_digest_discriminates(self):
        import numpy as np

        a = np.arange(16, dtype=np.int64)
        assert value_digest(a) == value_digest(a.copy())
        assert value_digest(a) != value_digest(a + 1)
        assert value_digest(a) != value_digest(a.astype(np.int32))
        assert value_digest({"x": a}) == value_digest({"x": a.copy()})
        assert value_digest({"x": a}) != value_digest({"y": a})


class TestServeBaselineGate:
    def payload(self, **overrides):
        point = {"completed": 20, "slo_attainment": 0.9,
                 "latency_p50_s": 0.1, "throughput_rps": 50.0}
        point.update(overrides)
        return {"bench": "serve", "cpu_count": 4, "sweep": [point]}

    def test_identical_payload_passes(self):
        base = self.payload()
        assert compare_serve_baseline(base, base) == []

    def test_completion_regression_fails_everywhere(self):
        fresh = self.payload(completed=10)
        fresh["cpu_count"] = 99   # different machine: still gated
        problems = compare_serve_baseline(fresh, self.payload())
        assert any("completions" in p for p in problems)

    def test_latency_gated_only_on_same_machine(self):
        fresh = self.payload(latency_p50_s=10.0)
        assert any("p50" in p for p in
                   compare_serve_baseline(fresh, self.payload()))
        fresh["cpu_count"] = 99
        assert not any("p50" in p for p in
                       compare_serve_baseline(fresh, self.payload()))

    def test_shrunken_sweep_fails(self):
        fresh = self.payload()
        fresh["sweep"] = []
        problems = compare_serve_baseline(fresh, self.payload())
        assert any("sweep shrank" in p for p in problems)

    def test_slo_attainment_regression_fails(self):
        fresh = self.payload(slo_attainment=0.2)
        problems = compare_serve_baseline(fresh, self.payload())
        assert any("SLO attainment" in p for p in problems)
