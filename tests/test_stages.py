"""Tests for computation stages: precise, iterative, diffusive kernels."""

import numpy as np
import pytest

from repro.anytime.fill import ConstantFill
from repro.anytime.permutations import (LfsrPermutation,
                                        SequentialPermutation,
                                        TreePermutation)
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.diffusive import chunk_boundaries
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.core.mapstage import MapStage
from repro.core.reduction import ReductionStage
from repro.core.stage import (Compute, DEFAULT_ACCESS_PENALTIES,
                              PreciseStage, access_penalty)


class TestCommands:
    def test_compute_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_access_penalties_ordering(self):
        """Sequential is cheapest; tree and LFSR pay the locality tax;
        a prefetcher recovers most of it (paper IV-C3)."""
        assert DEFAULT_ACCESS_PENALTIES["sequential"] == 1.0
        assert access_penalty("tree") > access_penalty("sequential")
        assert access_penalty("lfsr") > access_penalty("tree")
        assert access_penalty("lfsr", prefetcher=True) < \
            access_penalty("tree")

    def test_unknown_permutation_gets_conservative_penalty(self):
        assert access_penalty("mystery") > 1.0


class TestChunkBoundaries:
    def test_even_split(self):
        assert chunk_boundaries(10, 2) == [(0, 5), (5, 10)]

    def test_more_chunks_than_elements(self):
        spans = chunk_boundaries(3, 10)
        assert spans == [(0, 1), (1, 2), (2, 3)]

    def test_covers_everything_once(self):
        spans = chunk_boundaries(97, 7)
        covered = [i for a, b in spans for i in range(a, b)]
        assert covered == list(range(97))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_boundaries(-1, 2)
        with pytest.raises(ValueError):
            chunk_boundaries(5, 0)


class TestPreciseStage:
    def test_single_final_version(self):
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")
        stage = PreciseStage("s", b_out, (b_in,), lambda x: x * 2,
                             cost=10.0)
        auto = AnytimeAutomaton([stage], external={"in": 21})
        res = auto.run_simulated(total_cores=1.0)
        recs = res.output_records("out")
        assert len(recs) == 1
        assert recs[0].final and recs[0].value == 42
        assert not stage.anytime

    def test_precise_cost(self):
        b = VersionedBuffer("o")
        stage = PreciseStage("s", b, (), lambda: 1, cost=7.0)
        assert stage.precise_cost == 7.0


class TestIterativeStage:
    def make(self, costs=(5.0, 10.0)):
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")
        levels = [AccuracyLevel(lambda x: x // 10 * 10, costs[0]),
                  AccuracyLevel(lambda x: x, costs[1])]
        stage = IterativeStage("it", b_out, (b_in,), levels)
        return stage, b_in, b_out

    def test_versions_progress_to_precise(self):
        stage, b_in, b_out = self.make()
        auto = AnytimeAutomaton([stage], external={"in": 47})
        res = auto.run_simulated(total_cores=1.0)
        recs = res.output_records("out")
        assert [r.value for r in recs] == [40, 47]
        assert [r.final for r in recs] == [False, True]

    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError, match="at least one"):
            IterativeStage("x", VersionedBuffer("o"), (), [])

    def test_rejects_decreasing_costs_by_default(self):
        levels = [AccuracyLevel(lambda: 0, 10.0),
                  AccuracyLevel(lambda: 0, 5.0)]
        with pytest.raises(ValueError, match="allow_any_costs"):
            IterativeStage("x", VersionedBuffer("o"), (), levels)
        IterativeStage("y", VersionedBuffer("o2"), (), levels,
                       allow_any_costs=True)

    def test_redundancy_accounting(self):
        stage, _, _ = self.make(costs=(5.0, 10.0))
        assert stage.precise_cost == 10.0
        assert stage.total_cost == 15.0
        assert stage.redundancy_ratio == pytest.approx(1.5)

    def test_level_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            AccuracyLevel(lambda: 0, -1.0)


class TestMapStage:
    def make_auto(self, permutation=None, fill=None, chunks=4):
        img = np.arange(64, dtype=np.float64).reshape(8, 8)
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")
        stage = MapStage(
            "map", b_out, (b_in,),
            lambda idx, im: np.asarray(im).reshape(-1)[idx] ** 2,
            shape=(8, 8), dtype=np.float64,
            permutation=permutation or TreePermutation(), fill=fill,
            chunks=chunks)
        return AnytimeAutomaton([stage], external={"in": img}), img

    def test_final_output_is_precise(self):
        auto, img = self.make_auto()
        res = auto.run_simulated(total_cores=4.0)
        final = res.timeline.final_record("out")
        assert np.array_equal(final.value, img ** 2)

    def test_intermediate_versions_are_whole_outputs(self):
        auto, img = self.make_auto()
        res = auto.run_simulated(total_cores=4.0)
        for rec in res.output_records("out"):
            assert rec.value.shape == (8, 8)
            assert np.isfinite(rec.value).all()

    def test_version_count_matches_chunks(self):
        auto, _ = self.make_auto(chunks=4)
        res = auto.run_simulated(total_cores=4.0)
        assert len(res.output_records("out")) == 4

    def test_non_tree_permutation_requires_fill(self):
        with pytest.raises(ValueError, match="fill"):
            MapStage("m", VersionedBuffer("o"), (),
                     lambda idx: idx, shape=16,
                     permutation=LfsrPermutation())

    def test_lfsr_with_constant_fill(self):
        auto, img = self.make_auto(permutation=LfsrPermutation(),
                                   fill=ConstantFill(0.0,
                                                     spatial_ndim=2))
        res = auto.run_simulated(total_cores=4.0)
        final = res.timeline.final_record("out")
        assert np.array_equal(final.value, img ** 2)

    def test_out_shape_must_extend_sampled_shape(self):
        with pytest.raises(ValueError, match="out_shape"):
            MapStage("m", VersionedBuffer("o"), (), lambda idx: idx,
                     shape=(4, 4), out_shape=(5, 4, 3))

    def test_precise_method_matches_final(self):
        auto, img = self.make_auto()
        assert np.array_equal(auto.precise_output(), img ** 2)


class TestReductionStage:
    def make_auto(self, operator="add", weighted=True, chunks=4):
        data = np.arange(1, 101, dtype=np.float64)
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")
        stage = ReductionStage(
            "red", b_out, (b_in,),
            lambda idx, d: np.asarray(d)[idx].sum()
            if operator == "add" else np.asarray(d)[idx].max(),
            shape=100, out_shape=(), dtype=np.float64,
            operator=operator, permutation=LfsrPermutation(seed=3),
            weighted_output=weighted, chunks=chunks)
        return AnytimeAutomaton([stage], external={"in": data}), data

    def test_final_sum_is_exact(self):
        auto, data = self.make_auto()
        res = auto.run_simulated(total_cores=2.0)
        final = res.timeline.final_record("out")
        assert final.value == pytest.approx(data.sum())

    def test_weighted_intermediates_estimate_total(self):
        """Paper III-B2: O'_i = O_i * n / i approximates the final sum
        long before all elements are processed."""
        auto, data = self.make_auto(chunks=10)
        res = auto.run_simulated(total_cores=2.0)
        recs = res.output_records("out")
        early = recs[1].value   # 20% sample
        assert abs(early - data.sum()) / data.sum() < 0.35

    def test_unweighted_intermediates_are_partial(self):
        auto, data = self.make_auto(weighted=False, chunks=10)
        res = auto.run_simulated(total_cores=2.0)
        recs = res.output_records("out")
        assert recs[0].value < data.sum()
        assert recs[-1].value == pytest.approx(data.sum())

    def test_idempotent_operator_needs_no_weighting(self):
        auto, data = self.make_auto(operator="max")
        res = auto.run_simulated(total_cores=2.0)
        recs = res.output_records("out")
        # running max is monotone and ends exact
        values = [float(r.value) for r in recs]
        assert values == sorted(values)
        assert values[-1] == data.max()

    def test_precise_method(self):
        auto, data = self.make_auto()
        assert auto.precise_output() == pytest.approx(data.sum())


class TestBijectivityGuard:
    def test_non_bijective_permutation_rejected_at_runtime(self):
        """The model's central guarantee rests on p being a bijection;
        a broken permutation fails loudly before any work happens."""
        from repro.anytime.fill import ConstantFill
        from repro.anytime.permutations import Permutation

        class Broken(Permutation):
            name = "broken"

            def order(self, shape):
                n = (shape if isinstance(shape, int)
                     else int(np.prod(shape)))
                return np.zeros(n, dtype=np.int64)

        stage = MapStage("m", VersionedBuffer("o"), (),
                         lambda idx: idx, shape=8,
                         permutation=Broken(),
                         fill=ConstantFill(0.0))
        with pytest.raises(ValueError, match="not a bijection"):
            stage.order
