"""Tests for the low-refresh DRAM model and energy accounting."""

import numpy as np
import pytest

from repro.hw.dram import LowRefreshDram, RetentionModel
from repro.hw.energy import EnergyMeter, EnergyTable


class TestRetentionModel:
    def test_probability_grows_with_time(self):
        m = RetentionModel(weak_fraction=0.1, tau_seconds=1.0)
        p1 = m.decay_probability(0.5)
        p2 = m.decay_probability(2.0)
        assert 0 < p1 < p2 < 0.1

    def test_zero_elapsed_no_decay(self):
        assert RetentionModel().decay_probability(0.0) == 0.0

    def test_bounded_by_weak_fraction(self):
        m = RetentionModel(weak_fraction=0.01)
        assert m.decay_probability(1e9) <= 0.01

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            RetentionModel().decay_probability(-1.0)


class TestLowRefreshDram:
    def test_nominal_interval_no_decay(self):
        d = LowRefreshDram(seed=1)
        data = np.full(1000, 255, dtype=np.int64)
        d.write(data)
        d.elapse(0.05)
        assert np.array_equal(d.read(), data)
        assert d.refresh_energy_saved == 0.0

    def test_relaxed_interval_decays_to_zero(self):
        d = LowRefreshDram(
            refresh_interval_s=1.0,
            model=RetentionModel(weak_fraction=0.5, tau_seconds=0.5),
            seed=2)
        d.write(np.full(2000, 255, dtype=np.int64))
        d.elapse(10.0)
        assert d.read().sum() < 255 * 2000

    def test_decay_to_one_mode(self):
        d = LowRefreshDram(
            refresh_interval_s=1.0,
            model=RetentionModel(weak_fraction=0.5, tau_seconds=0.5,
                                 decay_to_one=True),
            seed=3)
        d.write(np.zeros(2000, dtype=np.int64))
        d.elapse(10.0)
        assert d.read().sum() > 0

    def test_energy_saving_formula(self):
        d = LowRefreshDram(refresh_interval_s=0.64)
        assert d.refresh_energy_saved == pytest.approx(0.9)

    def test_rejects_interval_below_nominal(self):
        with pytest.raises(ValueError):
            LowRefreshDram(refresh_interval_s=0.01)

    def test_refresh_does_not_restore_decayed_bits(self):
        """Refresh re-charges whatever is stored — corrupted included."""
        d = LowRefreshDram(
            refresh_interval_s=1.0,
            model=RetentionModel(weak_fraction=0.9, tau_seconds=0.1),
            seed=4)
        d.write(np.full(500, 255, dtype=np.int64))
        d.elapse(5.0)
        corrupted = d.read()
        d.refresh()
        assert np.array_equal(d.read(), corrupted)

    def test_read_before_write_raises(self):
        with pytest.raises(RuntimeError):
            LowRefreshDram().read()

    def test_rejects_float_data(self):
        with pytest.raises(TypeError):
            LowRefreshDram().write(np.array([1.5]))

    def test_elapse_rejects_negative(self):
        d = LowRefreshDram()
        d.write(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            d.elapse(-1.0)


class TestEnergyMeter:
    def test_mac_scales_with_bits(self):
        t = EnergyTable()
        assert t.mac(8) == pytest.approx(1.0)
        assert t.mac(4) == pytest.approx(0.5)

    def test_mac_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            EnergyTable().mac(0)

    def test_charges_accumulate(self):
        m = EnergyMeter()
        m.charge_macs(10, bits=8)
        m.charge_alu(4)
        m.charge_sram(10, energy_per_access=0.1)
        m.charge_dram(1)
        assert m.total == pytest.approx(10 + 2 + 1 + 20)

    def test_reset(self):
        m = EnergyMeter()
        m.charge(5.0)
        m.reset()
        assert m.total == 0.0

    def test_rejects_negative_charge(self):
        with pytest.raises(ValueError):
            EnergyMeter().charge(-1.0)

    def test_dram_much_costlier_than_sram(self):
        t = EnergyTable()
        assert t.dram_access > 10 * t.sram_access
