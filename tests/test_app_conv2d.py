"""Tests for the 2dconv application (paper Figures 11, 16, 19, 20)."""

import math

import numpy as np
import pytest
from scipy import ndimage

from repro.apps.conv2d import (blur_kernel, build_conv2d_automaton,
                               conv2d_elements, conv2d_precise,
                               sample_size_sweep)
from repro.core.properties import check_purity
from repro.metrics.snr import snr_db


class TestKernel:
    def test_binomial_structure(self):
        k = blur_kernel(3)
        assert k.tolist() == [[1, 2, 1], [2, 4, 2], [1, 2, 1]]

    def test_sum_is_power_of_two(self):
        for size in (3, 5, 9):
            total = int(blur_kernel(size).sum())
            assert total & (total - 1) == 0

    def test_rejects_even_size(self):
        with pytest.raises(ValueError):
            blur_kernel(4)


class TestPrecise:
    def test_matches_scipy_in_interior(self, small_image):
        """Our from-scratch convolution agrees with scipy.ndimage away
        from the border (border modes differ slightly)."""
        k = blur_kernel(3)
        ours = conv2d_precise(small_image, k).astype(np.float64)
        ref = ndimage.convolve(small_image.astype(np.float64),
                               k.astype(np.float64) / k.sum(),
                               mode="nearest")
        interior = (slice(2, -2), slice(2, -2))
        assert np.abs(ours[interior] - ref[interior]).max() <= 1.0

    def test_constant_image_unchanged(self):
        img = np.full((16, 16), 77, dtype=np.uint8)
        assert np.array_equal(conv2d_precise(img), img)

    def test_output_dtype_and_range(self, small_image):
        out = conv2d_precise(small_image)
        assert out.dtype == np.uint8

    def test_elements_are_pure(self, small_image):
        k = blur_kernel(3)
        idx = np.array([0, 5, 100])
        check_purity(lambda i, im: conv2d_elements(i, im, k),
                     [idx, small_image.astype(np.int64)])


class TestAutomaton:
    def test_final_output_bit_exact(self, small_image):
        auto = build_conv2d_automaton(small_image, chunks=8)
        ref = conv2d_precise(small_image)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("filtered")
        assert np.array_equal(final.value, ref)

    def test_profile_monotone_to_inf(self, small_image):
        auto = build_conv2d_automaton(small_image, chunks=8)
        res = auto.run_simulated(total_cores=8.0)
        prof = auto.profile(res, total_cores=8.0)
        assert prof.is_monotonic(1.0)
        assert math.isinf(prof.final_snr_db)

    def test_reduced_precision_variant_caps_snr(self, small_image):
        auto = build_conv2d_automaton(small_image, chunks=4,
                                      pixel_bits=4)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("filtered")
        ref = conv2d_precise(small_image)
        snr = snr_db(final.value, ref)
        assert 10.0 < snr < 40.0 and not math.isinf(snr)

    def test_reduced_precision_cheaper(self, small_image):
        full = build_conv2d_automaton(small_image, chunks=4)
        half = build_conv2d_automaton(small_image, chunks=4,
                                      pixel_bits=4)
        assert half.baseline_cost() < full.baseline_cost()


class TestSampleSizeSweep:
    def test_nominal_sweep_ends_exact(self, small_image):
        rows = sample_size_sweep(small_image)
        sizes = [s for s, _ in rows]
        assert sizes == sorted(sizes)
        assert sizes[-1] == small_image.size
        assert math.isinf(rows[-1][1])

    def test_snr_grows_with_sample_size(self, small_image):
        rows = sample_size_sweep(small_image)
        snrs = [snr for _, snr in rows]
        best = -math.inf
        for s in snrs:
            assert s >= best - 1.0
            best = max(best, s)

    def test_precision_ceilings_ordered(self, small_image):
        finals = {}
        for bits in (6, 4, 2):
            finals[bits] = sample_size_sweep(small_image,
                                             pixel_bits=bits)[-1][1]
        assert finals[6] > finals[4] > finals[2]

    def test_sram_upsets_cap_final_snr(self, small_image):
        clean = sample_size_sweep(small_image, seed=9)
        noisy = sample_size_sweep(small_image, read_upset_prob=1e-4,
                                  seed=9)
        assert math.isinf(clean[-1][1])
        assert not math.isinf(noisy[-1][1])

    def test_sram_curves_overlay_at_small_samples(self, small_image):
        """Paper IV-B2: flips scale with elements processed, so the
        curves line up at lower sample sizes."""
        clean = sample_size_sweep(small_image, seed=9)
        noisy = sample_size_sweep(small_image, read_upset_prob=1e-6,
                                  seed=9)
        assert abs(clean[0][1] - noisy[0][1]) < 1.0

    def test_custom_sample_sizes(self, small_image):
        rows = sample_size_sweep(small_image, sample_sizes=[16, 256])
        assert [s for s, _ in rows] == [16, 256]

    def test_deterministic_under_seed(self, small_image):
        a = sample_size_sweep(small_image, read_upset_prob=1e-4, seed=3)
        b = sample_size_sweep(small_image, read_upset_prob=1e-4, seed=3)
        assert a == b
