"""Tests for reduced fixed-point precision (paper III-B2, Figure 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.anytime.precision import (AnytimeDotProduct, anytime_dot,
                                     bit_planes, keep_top_bits,
                                     quantize_to_bits)


class TestBitPlanes:
    def test_reconstruction(self):
        values = np.array([0, 1, 127, 128, 255])
        planes = bit_planes(values, 8)
        assert len(planes) == 8
        assert np.array_equal(sum(planes), values)

    def test_most_significant_first(self):
        planes = bit_planes(np.array([0b10000001]), 8)
        assert planes[0].tolist() == [128]
        assert planes[-1].tolist() == [1]

    @given(hnp.arrays(np.int64, st.integers(1, 30),
                      elements=st.integers(0, 2 ** 16 - 1)))
    @settings(max_examples=40, deadline=None)
    def test_reconstruction_property(self, values):
        assert np.array_equal(sum(bit_planes(values, 16)), values)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            bit_planes(np.array([-1]), 8)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="exceed"):
            bit_planes(np.array([256]), 8)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            bit_planes(np.array([1.5]), 8)


class TestKeepTopBits:
    def test_masks_low_bits(self):
        assert keep_top_bits(np.array([0xFF]), 4, 8).tolist() == [0xF0]

    def test_zero_bits_zeroes_everything(self):
        assert keep_top_bits(np.array([0xFF]), 0, 8).tolist() == [0]

    def test_all_bits_is_identity(self):
        v = np.array([0xAB])
        assert keep_top_bits(v, 8, 8).tolist() == [0xAB]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            keep_top_bits(np.array([1]), 9, 8)

    def test_quantize_alias(self):
        assert quantize_to_bits(np.array([0b10111111]), 2).tolist() == \
            [0b10000000]


class TestAnytimeDot:
    @given(hnp.arrays(np.int64, st.tuples(st.integers(1, 6),
                                          st.integers(1, 6)),
                      elements=st.integers(-100, 100)),
           st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_final_partial_equals_precise(self, inputs, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 256, size=(inputs.shape[1], 3))
        partials = list(anytime_dot(inputs, weights, bits=8))
        assert len(partials) == 8
        assert np.array_equal(partials[-1], inputs @ weights)

    def test_error_decreases_msb_first(self, rng):
        """Sequential (MSB-first) bit sampling: each partial is at least
        as close to the precise product as the one before."""
        inputs = rng.integers(0, 50, size=(8, 16))
        weights = rng.integers(0, 256, size=(16, 4))
        precise = inputs @ weights
        errors = [np.abs(precise - p).sum()
                  for p in anytime_dot(inputs, weights, bits=8)]
        assert all(b <= a for a, b in zip(errors, errors[1:]))
        assert errors[-1] == 0

    def test_partial_matches_masked_weights(self, rng):
        """After k planes the partial equals I @ (W & topk-mask) — the
        paper's f_i(I, O_{i-1}) = O_{i-1} + (I . (W & mask))."""
        inputs = rng.integers(-20, 20, size=(4, 8))
        weights = rng.integers(0, 256, size=(8, 2))
        for k, partial in enumerate(anytime_dot(inputs, weights, 8),
                                    start=1):
            masked = keep_top_bits(weights, k, 8)
            assert np.array_equal(partial, inputs @ masked)


class TestAnytimeDotProduct:
    def test_step_by_step(self, rng):
        inputs = rng.integers(0, 10, size=(3, 5))
        weights = rng.integers(0, 16, size=(5, 2))
        ad = AnytimeDotProduct(inputs, weights, bits=4)
        assert ad.steps_done == 0 and not ad.done
        ad.step()
        assert ad.steps_done == 1
        out = ad.run_to_completion()
        assert ad.done
        assert np.array_equal(out, ad.precise())

    def test_step_after_done_raises(self, rng):
        ad = AnytimeDotProduct(np.ones((2, 2), np.int64),
                               np.ones((2, 2), np.int64), bits=2)
        ad.run_to_completion()
        with pytest.raises(StopIteration):
            ad.step()

    def test_no_extra_work(self):
        """Total per-plane contributions equal one full dot product's
        worth of partial products (the paper: bit-serial computation
        does not add work)."""
        inputs = np.array([[3]])
        weights = np.array([[0b101]])
        partials = list(anytime_dot(inputs, weights, bits=3))
        assert [int(p[0, 0]) for p in partials] == [12, 12, 15]
