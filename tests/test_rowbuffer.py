"""Tests for the DRAM row-buffer locality model."""

import numpy as np
import pytest

from repro.anytime.permutations import (LfsrPermutation,
                                        SequentialPermutation,
                                        TreePermutation)
from repro.hw.cache import trace_for_permutation
from repro.hw.rowbuffer import (DramGeometry, RowBufferModel,
                                RowBufferStats)


class TestGeometry:
    def test_locate(self):
        g = DramGeometry(row_bytes=1024, banks=4)
        assert g.locate(0) == (0, 0)
        assert g.locate(1023) == (0, 0)
        assert g.locate(1024) == (1, 0)
        assert g.locate(4096) == (0, 1)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            DramGeometry(row_bytes=0)


class TestAccess:
    def test_same_row_hits(self):
        m = RowBufferModel(DramGeometry(row_bytes=1024, banks=1))
        assert not m.access(0)
        assert m.access(512)
        assert not m.access(2048)
        assert m.stats.hit_rate == pytest.approx(1 / 3)

    def test_banks_are_independent(self):
        m = RowBufferModel(DramGeometry(row_bytes=1024, banks=2))
        m.access(0)        # bank 0 row 0
        m.access(1024)     # bank 1 row 0
        assert m.access(512)    # bank 0 row 0 still open
        assert m.access(1536)   # bank 1 row 0 still open

    def test_empty_stats(self):
        assert RowBufferStats().hit_rate == 0.0


class TestVectorizedTrace:
    def test_matches_scalar_replay(self, rng):
        addresses = rng.integers(0, 64 * 1024, size=500)
        scalar = RowBufferModel()
        for a in addresses:
            scalar.access(int(a))
        vector = RowBufferModel()
        vector.run_trace(addresses)
        assert vector.stats.row_hits == scalar.stats.row_hits
        assert vector.stats.accesses == scalar.stats.accesses

    def test_incremental_traces_keep_open_rows(self):
        m = RowBufferModel(DramGeometry(row_bytes=1024, banks=1))
        m.run_trace(np.array([0, 100]))
        m.run_trace(np.array([200]))    # row still open -> hit
        assert m.stats.row_hits == 2

    def test_empty_trace(self):
        m = RowBufferModel()
        stats = m.run_trace(np.array([], dtype=np.int64))
        assert stats.accesses == 0


class TestLocalityClaim:
    """Paper IV-C3: tree/LFSR sampling also hurts row-buffer locality."""

    def test_sequential_dominates_row_hits(self):
        rates = {}
        for perm in (SequentialPermutation(), TreePermutation(),
                     LfsrPermutation(seed=5)):
            trace = trace_for_permutation(perm.order(16384),
                                          element_bytes=4)
            model = RowBufferModel()
            rates[perm.name] = model.run_trace(trace).hit_rate
        assert rates["sequential"] > 0.9
        assert rates["tree"] < 0.5 * rates["sequential"]
        assert rates["lfsr"] < 0.5 * rates["sequential"]
