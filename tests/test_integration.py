"""Cross-module integration tests: the model's headline guarantees hold
for every evaluation application, at more than one problem size.

These are the invariants the paper sells:
1. every output version is a valid, whole application output;
2. accuracy increases (monotonically, up to small estimation noise)
   over time;
3. the final version is bit-exactly the precise output;
4. interruption at any moment leaves a valid output behind.
"""

import math

import numpy as np
import pytest

from repro.apps.conv2d import build_conv2d_automaton, conv2d_precise
from repro.apps.debayer import build_debayer_automaton, debayer_precise
from repro.apps.dwt53 import build_dwt53_automaton, reconstruction_metric
from repro.apps.histeq import build_histeq_automaton, histeq_precise
from repro.apps.kmeans import (build_kmeans_automaton,
                               clustered_image_metric, kmeans_precise)
from repro.core.controller import DeadlineStop, VersionCountStop
from repro.core.scheduling import final_stage_shares, proportional_shares
from repro.data.images import bayer_mosaic, clustered_image, scene_image
from repro.metrics.snr import snr_db

APPS = {
    "2dconv": dict(
        build=lambda size: build_conv2d_automaton(
            scene_image(size, seed=0), chunks=8),
        reference=lambda size: conv2d_precise(scene_image(size, seed=0)),
        metric=None, schedule=proportional_shares, tol=1.0),
    "histeq": dict(
        build=lambda size: build_histeq_automaton(
            scene_image(size, seed=1), chunks=8),
        reference=lambda size: histeq_precise(scene_image(size, seed=1)),
        metric=None, schedule=proportional_shares, tol=4.0),
    "dwt53": dict(
        build=lambda size: build_dwt53_automaton(
            scene_image(size, seed=2)),
        reference=lambda size: scene_image(size, seed=2),
        metric=reconstruction_metric(), schedule=proportional_shares,
        tol=1.0),
    "debayer": dict(
        build=lambda size: build_debayer_automaton(
            bayer_mosaic(size, seed=3), chunks=8),
        reference=lambda size: debayer_precise(
            bayer_mosaic(size, seed=3)),
        metric=None, schedule=proportional_shares, tol=1.0),
    "kmeans": dict(
        build=lambda size: build_kmeans_automaton(
            clustered_image(size, seed=4, clusters=4), k=4, chunks=8),
        reference=lambda size: kmeans_precise(
            clustered_image(size, seed=4, clusters=4), k=4),
        metric=clustered_image_metric, schedule=final_stage_shares,
        tol=3.0),
}


def run_app(name, size, cores=8.0, stop=None):
    cfg = APPS[name]
    auto = cfg["build"](size)
    res = auto.run_simulated(total_cores=cores, schedule=cfg["schedule"],
                             stop=stop)
    return auto, res, cfg


@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("size", [32, 64])
class TestGuarantees:
    def test_monotone_accuracy_and_precise_finish(self, app, size):
        auto, res, cfg = run_app(app, size)
        metric = cfg["metric"]
        reference = cfg["reference"](size)
        prof = auto.profile(res, total_cores=8.0, metric=metric,
                            reference=reference
                            if app in ("dwt53", "kmeans") else None)
        assert prof.is_monotonic(cfg["tol"]), \
            prof.monotonicity_violations(cfg["tol"])[:3]
        assert math.isinf(prof.final_snr_db)
        # early availability: the first output lands before the last
        rows = prof.to_rows()
        assert rows[0][0] < 0.75 * rows[-1][0]


@pytest.mark.parametrize("app", sorted(APPS))
class TestInterruption:
    def test_interrupt_leaves_valid_whole_output(self, app):
        """Stop after two versions: the newest output must be complete
        and well formed — interruptibility needs no cleanup."""
        auto, res, cfg = run_app(app, 32, stop=VersionCountStop(2))
        assert res.stopped_early
        recs = res.output_records(auto.terminal_buffer_name)
        assert len(recs) == 2
        value = recs[-1].value
        reference = cfg["reference"](32)
        if isinstance(value, dict):
            value = value["image"]
        if app == "dwt53":
            from repro.apps.dwt53 import reconstruct
            value = reconstruct(value)
        assert value.shape == np.asarray(reference).shape
        assert np.isfinite(np.asarray(value, dtype=np.float64)).all()

    def test_deadline_interrupt_at_half_baseline(self, app):
        auto, res, cfg = run_app(
            app, 32,
            stop=DeadlineStop(APPS[app]["build"](32).baseline_cost()
                              / 8.0 * 0.5))
        recs = res.output_records(auto.terminal_buffer_name)
        # multi-stage apps (histeq, kmeans) may not have pushed a whole
        # output through the pipeline by 0.5x baseline; the single-stage
        # apps must have
        if app in ("2dconv", "debayer", "dwt53"):
            assert recs, f"{app}: no output before half baseline"
        for rec in recs:
            assert rec.time <= auto.baseline_cost() / 8.0 * 0.5 + 1e-9, \
                "deadline semantics: no record may postdate the deadline"


class TestLetItRunLonger:
    """The paper's user story: if the output is not acceptable, just run
    longer — accuracy at a later deadline is never worse."""

    @pytest.mark.parametrize("app", ["2dconv", "debayer"])
    def test_longer_deadline_not_worse(self, app):
        cfg = APPS[app]
        reference = cfg["reference"](32)
        snrs = []
        for frac in (0.3, 0.8, 2.5):
            auto = cfg["build"](32)
            deadline = auto.baseline_cost() / 8.0 * frac
            res = auto.run_simulated(total_cores=8.0,
                                     stop=DeadlineStop(deadline))
            recs = res.output_records(auto.terminal_buffer_name)
            snrs.append(snr_db(recs[-1].value, reference))
        assert snrs[0] <= snrs[1] + 1.0
        assert snrs[1] <= snrs[2] + 1.0


class TestSizeStability:
    """Curve shapes are size-stable: time-to-precise (normalized) moves
    little between 32 and 64 pixels per side, supporting the benchmark's
    use of reduced image sizes."""

    @pytest.mark.parametrize("app", ["2dconv", "debayer", "dwt53"])
    def test_time_to_precise_stable(self, app):
        ttp = []
        for size in (32, 64):
            auto, res, cfg = run_app(app, size)
            prof = auto.profile(
                res, total_cores=8.0, metric=cfg["metric"],
                reference=cfg["reference"](size)
                if app == "dwt53" else None)
            ttp.append(prof.time_to_precise)
        assert ttp[0] is not None and ttp[1] is not None
        assert abs(ttp[0] - ttp[1]) / ttp[1] < 0.35
