"""Tests for the synthetic input generators."""

import numpy as np
import pytest

from repro.data.images import (bayer_mosaic, clustered_image,
                               gradient_image, scene_image,
                               texture_image)


class TestGradient:
    def test_shape_and_dtype(self):
        img = gradient_image(32)
        assert img.shape == (32, 32) and img.dtype == np.uint8

    def test_spans_full_range(self):
        img = gradient_image(64)
        assert img.min() == 0 and img.max() == 255

    def test_is_smooth(self):
        img = gradient_image(64).astype(np.int64)
        assert np.abs(np.diff(img, axis=1)).max() <= 8

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            gradient_image(0)


class TestTexture:
    def test_deterministic(self):
        assert np.array_equal(texture_image(32, seed=5),
                              texture_image(32, seed=5))

    def test_seed_changes_content(self):
        assert not np.array_equal(texture_image(32, seed=5),
                                  texture_image(32, seed=6))


class TestScene:
    def test_shape_dtype_determinism(self):
        a = scene_image(64, seed=1)
        b = scene_image(64, seed=1)
        assert a.shape == (64, 64) and a.dtype == np.uint8
        assert np.array_equal(a, b)

    def test_has_smooth_and_edge_content(self):
        """The runtime-accuracy curves need both: edges drive mid-sample
        SNR, texture drives the tail."""
        img = scene_image(128, seed=0).astype(np.int64)
        grad = np.abs(np.diff(img, axis=0))
        assert (grad == 0).mean() > 0.05      # flat regions exist
        assert (grad > 30).mean() > 0.005     # hard edges exist

    def test_intensity_spread(self):
        img = scene_image(128, seed=0)
        assert img.std() > 30


class TestBayer:
    def test_shape_and_determinism(self):
        a = bayer_mosaic(64, seed=2)
        assert a.shape == (64, 64) and a.dtype == np.uint8
        assert np.array_equal(a, bayer_mosaic(64, seed=2))

    def test_rggb_pattern_sites_come_from_planes(self):
        """Each mosaic site equals the corresponding colour plane of the
        underlying RGB scene."""
        rgb = clustered_image(32, seed=2, clusters=0)
        mosaic = bayer_mosaic(32, seed=2)
        assert np.array_equal(mosaic[0::2, 0::2], rgb[0::2, 0::2, 0])
        assert np.array_equal(mosaic[0::2, 1::2], rgb[0::2, 1::2, 1])
        assert np.array_equal(mosaic[1::2, 0::2], rgb[1::2, 0::2, 1])
        assert np.array_equal(mosaic[1::2, 1::2], rgb[1::2, 1::2, 2])


class TestClustered:
    def test_shape_and_channels(self):
        img = clustered_image(32, seed=3, clusters=5)
        assert img.shape == (32, 32, 3) and img.dtype == np.uint8

    def test_colours_cluster(self):
        """Pixels concentrate around a handful of colour centres: a
        k-colour quantization captures far more variance than a single
        global mean colour would."""
        from repro.apps.kmeans import kmeans_precise

        img = clustered_image(64, seed=3, clusters=4)
        flat = img.reshape(-1, 3).astype(np.float64)
        quantized = kmeans_precise(img, k=4, epochs=3)
        sse = ((quantized.reshape(-1, 3).astype(np.float64)
                - flat) ** 2).sum()
        total = ((flat - flat.mean(axis=0)) ** 2).sum()
        assert sse < 0.5 * total

    def test_zero_clusters_gives_plain_scene(self):
        img = clustered_image(32, seed=3, clusters=0)
        assert img.shape == (32, 32, 3)
