"""Property-based fuzzer tests (repro.check.fuzz)."""

import json

import pytest

from repro.check import fuzz as fz

pytestmark = pytest.mark.check

BASE_SPEC = {
    "format": 1,
    "stages": [{"kind": 2, "op": 1, "cost": 10, "inputs": [0],
                "chunks": 3, "perm": "tree", "sync": False}],
    "data": list(range(16)),
    "cores": 4,
    "faults": None,
    "stop_after": None,
}


def _spec(**overrides):
    spec = json.loads(json.dumps(BASE_SPEC))
    spec.update(overrides)
    return spec


class TestBuildAndRun:
    @pytest.mark.parametrize("perm", fz._PERMUTATIONS)
    def test_every_permutation_converges(self, perm):
        spec = _spec(stages=[dict(BASE_SPEC["stages"][0], perm=perm)])
        summary = fz.run_spec(spec)
        assert summary["completed"]

    def test_sync_pair_converges(self):
        spec = _spec(stages=[dict(BASE_SPEC["stages"][0], sync=True)])
        summary = fz.run_spec(spec)
        assert summary["completed"]

    def test_faulted_run_terminates_clean(self):
        spec = _spec(faults={"seed": 3, "n": 2, "max_at": 10,
                             "policy": "degrade"})
        summary = fz.run_spec(spec)     # must not raise
        assert summary["events"] > 0

    def test_interrupted_run_terminates_clean(self):
        spec = _spec(stop_after=1,
                     stages=[dict(BASE_SPEC["stages"][0], chunks=4)])
        summary = fz.run_spec(spec)
        assert summary["terminal_versions"] >= 1

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="format"):
            fz.build_automaton(_spec(format=99))

    def test_build_is_deterministic(self):
        a = fz.build_automaton(_spec())
        b = fz.build_automaton(_spec())
        assert [s.name for s in a.graph.stages] == \
            [s.name for s in b.graph.stages]
        import numpy as np
        assert np.array_equal(a.precise_output(), b.precise_output())


class TestStrategy:
    def test_specs_are_json_round_trippable(self):
        hypothesis = pytest.importorskip("hypothesis")

        @hypothesis.settings(max_examples=20, deadline=None,
                             database=None)
        @hypothesis.given(fz.spec_strategy())
        def check(spec):
            assert json.loads(json.dumps(spec)) == spec

        check()


class TestFuzzLoop:
    @pytest.mark.slow
    @pytest.mark.timeout(300)
    def test_bounded_fuzz_finds_nothing(self):
        pytest.importorskip("hypothesis")
        assert fz.fuzz(max_examples=10) is None

    @pytest.mark.slow
    @pytest.mark.timeout(300)
    def test_planted_bug_is_captured_shrunk_and_replayable(
            self, tmp_path, monkeypatch):
        pytest.importorskip("hypothesis")
        real = fz.run_spec

        def planted(spec):
            real(spec)
            assert spec["faults"] is None, "planted: faulted spec"

        monkeypatch.setattr(fz, "run_spec", planted)
        seed_file = str(tmp_path / "seed.json")
        failure = fz.fuzz(max_examples=60, seed_file=seed_file)
        assert failure is not None
        assert "planted" in failure.error
        assert failure.spec["faults"] is not None
        # the captured spec is the shrunk falsifying example and the
        # seed file round-trips it
        assert fz.load_spec(seed_file) == failure.spec
        # under the real property the shrunk spec passes again
        monkeypatch.setattr(fz, "run_spec", real)
        fz.replay(seed_file)


class TestSeedFiles:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "spec.json")
        fz.save_spec(_spec(), path, error="synthetic")
        assert fz.load_spec(path) == _spec()
        payload = json.loads(open(path).read())
        assert payload["error"] == "synthetic"

    def test_load_rejects_unknown_format(self, tmp_path):
        path = str(tmp_path / "bad.json")
        path_obj = tmp_path / "bad.json"
        path_obj.write_text('{"spec": {"format": 42}}')
        with pytest.raises(ValueError, match="format"):
            fz.load_spec(path)
