"""Fault tolerance: policies, injection, graceful degradation, restart.

The model's promise is that the output buffer always holds a valid
approximation; these tests check the promise survives stage *failures* —
a crash mid-run must leave the pre-crash approximation intact, a
restarted stage must still reach the precise output, and degradation
must cascade without wedging either executor.
"""

import threading
import time

import numpy as np
import pytest

from repro.anytime.permutations import SequentialPermutation, TreePermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.channel import UpdateChannel
from repro.core.controller import FailureBudget
from repro.core.diffusive import DiffusiveStage
from repro.core.faults import (FaultInjected, FaultInjector, FaultPolicy,
                               FaultSpec, parse_fault_spec, resolve_policy)
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.core.mapstage import MapStage
from repro.core.simexec import ExecutionError
from repro.core.stage import PreciseStage
from repro.core.syncstage import SynchronousStage

pytestmark = [pytest.mark.faults, pytest.mark.timeout(60)]


def map_automaton(chunks=8):
    """One diffusive map stage: in -> out, tree order, dense state
    persists across restarts (monotone accuracy)."""
    img = np.arange(64, dtype=np.float64).reshape(8, 8)
    b_in = VersionedBuffer("in")
    b_out = VersionedBuffer("out")
    stage = MapStage("m", b_out, (b_in,),
                     lambda idx, im: np.asarray(im).reshape(-1)[idx] * 3,
                     shape=(8, 8), dtype=np.float64,
                     permutation=TreePermutation(), chunks=chunks)
    return AnytimeAutomaton([stage], external={"in": img}), img * 3


def pipeline_automaton():
    """f (iterative, 2 versions) -> g (precise): in -> F -> G."""
    b_in = VersionedBuffer("in")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    f = IterativeStage("f", b_f, (b_in,),
                       [AccuracyLevel(lambda x: x // 2, 1.0),
                        AccuracyLevel(lambda x: x, 1.0)])
    g = PreciseStage("g", b_g, (b_f,), lambda F: F * 10, cost=1.0)
    return AnytimeAutomaton([f, g], external={"in": 9})


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="on_failure"):
            FaultPolicy(on_failure="explode")
        with pytest.raises(ValueError, match="max_retries"):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            FaultPolicy(backoff=-0.1)

    def test_decide_fail_and_degrade_are_immediate(self):
        assert FaultPolicy(on_failure="fail").decide(1) == "fail"
        assert FaultPolicy(on_failure="degrade",
                           max_retries=5).decide(1) == "degrade"

    def test_decide_restart_bounded_by_retries(self):
        p = FaultPolicy(on_failure="restart", max_retries=2)
        assert p.decide(1) == "restart"
        assert p.decide(2) == "restart"
        assert p.decide(3) == "degrade"

    def test_restart_delay_is_exponential(self):
        p = FaultPolicy(on_failure="restart", max_retries=3,
                        backoff=0.5, backoff_factor=2.0)
        assert p.restart_delay(1) == pytest.approx(0.5)
        assert p.restart_delay(3) == pytest.approx(2.0)
        assert FaultPolicy().restart_delay(5) == 0.0

    def test_resolve_policy(self):
        default = resolve_policy(None, "x")
        assert default.on_failure == "fail"
        p = FaultPolicy(on_failure="degrade")
        assert resolve_policy(p, "x") is p
        mapping = {"a": p, "*": FaultPolicy(on_failure="restart",
                                            max_retries=1)}
        assert resolve_policy(mapping, "a") is p
        assert resolve_policy(mapping, "b").on_failure == "restart"


class TestSpecParsing:
    def test_minimal(self):
        spec = parse_fault_spec("conv:5")
        assert spec == FaultSpec(stage="conv", at=5)

    def test_delay_and_times(self):
        spec = parse_fault_spec("norm:2:delay=0.5:x3")
        assert spec.kind == "delay" and spec.delay == 0.5
        assert spec.times == 3

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_fault_spec("conv")
        with pytest.raises(ValueError):
            parse_fault_spec("conv:abc")
        with pytest.raises(ValueError):
            parse_fault_spec("conv:1:wat")


class TestInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector.random_schedule(42, ["f", "g"], n_faults=4)
        b = FaultInjector.random_schedule(42, ["f", "g"], n_faults=4)
        assert a.faults == b.faults
        c = FaultInjector.random_schedule(43, ["f", "g"], n_faults=4)
        assert a.faults != c.faults

    def test_same_schedule_same_sim_timeline(self):
        """Replaying one fault schedule in the deterministic simulator
        yields bit-identical timelines and reports."""
        runs = []
        for _ in range(2):
            auto, _ = map_automaton()
            res = auto.run_simulated(
                total_cores=4.0,
                faults=FaultPolicy(on_failure="restart", max_retries=2),
                injector=FaultInjector.crash("m", at=7))
            runs.append(res)
        r1, r2 = runs
        assert [(rec.time, rec.buffer, rec.version, rec.final)
                for rec in r1.timeline.records] == \
               [(rec.time, rec.buffer, rec.version, rec.final)
                for rec in r2.timeline.records]
        assert r1.stage_reports["m"].attempts == \
            r2.stage_reports["m"].attempts

    def test_one_shot_fault_does_not_refire_after_restart(self):
        injector = FaultInjector.crash("m", at=7)
        auto, ref = map_automaton()
        res = auto.run_simulated(
            total_cores=4.0,
            faults=FaultPolicy(on_failure="restart", max_retries=1),
            injector=injector)
        assert res.completed
        assert [t[0] for t in injector.triggered] == ["m"]
        assert len(injector.triggered) == 1
        assert np.array_equal(res.timeline.final_record("out").value, ref)


class TestThreadedFaults:
    def test_crash_keeps_pre_crash_approximation(self):
        """The acceptance scenario: an injected crash mid-run still
        returns a result whose watched buffer holds a valid
        approximation, with the failure recorded."""
        auto, _ = map_automaton(chunks=8)
        # commands per pass: WaitInputs, then (Compute, Write) x 8;
        # crashing at command 10 leaves >= 4 published versions
        res = auto.run_threaded(
            timeout_s=30.0,
            faults=FaultPolicy(on_failure="degrade"),
            injector=FaultInjector.crash("m", at=10))
        assert not res.completed
        assert not res.stopped_early      # a crash is not an interrupt
        report = res.stage_reports["m"]
        assert report.degraded and report.failures == 1
        assert "injected fault" in report.last_error
        records = res.output_records("out")
        assert len(records) >= 1          # pre-crash approximations kept
        last = records[-1].value
        assert last.shape == (8, 8) and np.isfinite(last).all()
        assert not records[-1].final

    def test_restart_reaches_precise_output(self):
        auto, ref = map_automaton(chunks=8)
        res = auto.run_threaded(
            timeout_s=30.0,
            faults=FaultPolicy(on_failure="restart", max_retries=1),
            injector=FaultInjector.crash("m", at=10))
        assert res.completed and not res.stopped_early
        report = res.stage_reports["m"]
        assert report.completed and not report.degraded
        assert report.attempts == 2 and report.failures == 1
        final = res.timeline.final_record("out")
        assert final is not None and final.final
        assert np.array_equal(final.value, ref)

    def test_retries_exhausted_degrades(self):
        auto, _ = map_automaton(chunks=8)
        res = auto.run_threaded(
            timeout_s=30.0,
            faults=FaultPolicy(on_failure="restart", max_retries=1),
            injector=FaultInjector.crash("m", at=10, times=3))
        report = res.stage_reports["m"]
        assert report.degraded and report.failures == 2
        assert not res.completed

    def test_downstream_finishes_on_degraded_upstream(self):
        """f crashes after its first version; g must still consume that
        version and finish (degraded) instead of hanging."""
        auto = pipeline_automaton()
        # f commands: WaitInputs, Compute, Write(v1), Compute, Write(final)
        res = auto.run_threaded(
            timeout_s=30.0,
            faults=FaultPolicy(on_failure="degrade"),
            injector=FaultInjector.crash("f", at=4))
        assert res.stage_reports["f"].degraded
        assert res.stage_reports["g"].degraded
        # g processed f's v1 (9 // 2 = 4) before the crash froze it
        assert res.final_values["G"] == 40
        assert not res.output_records("G")[-1].final

    def test_two_input_stage_woken_by_second_input(self):
        """A consumer blocked on (a, b) must wake promptly when the
        *second* input publishes (the old code only blocked on
        inputs[0])."""
        b_a = VersionedBuffer("a")
        b_b = VersionedBuffer("b")
        b_sum = VersionedBuffer("sum")

        def slow_five():
            time.sleep(0.2)
            return 5

        sa = PreciseStage("sa", b_a, (), lambda: 1, cost=1.0)
        sb = PreciseStage("sb", b_b, (), slow_five, cost=1.0)
        c = PreciseStage("c", b_sum, (b_a, b_b),
                         lambda A, B: A + B, cost=1.0)
        auto = AnytimeAutomaton([sa, sb, c])
        t0 = time.perf_counter()
        res = auto.run_threaded(timeout_s=30.0)
        elapsed = time.perf_counter() - t0
        assert res.completed
        assert res.final_values["sum"] == 6
        # woken by b's write, not a 30 s timeout or a wedge
        assert elapsed < 10.0

    def test_failure_budget_stops_run(self):
        auto, _ = map_automaton(chunks=8)
        budget = FailureBudget(2)
        res = auto.run_threaded(
            timeout_s=30.0, stop=budget,
            faults=FaultPolicy(on_failure="restart", max_retries=10),
            injector=FaultInjector.crash("m", at=10, times=5))
        assert budget.failures == 2
        assert res.stopped_early
        assert not res.completed


class TestSimulatedFaults:
    def test_fail_fast_returns_partial_result(self):
        auto = pipeline_automaton()
        res = auto.run_simulated(
            total_cores=2.0,
            injector=FaultInjector.crash("f", at=4))
        assert not res.completed
        assert not res.stopped_early
        assert res.failed_stages == ["f"]
        assert res.errors and isinstance(res.errors[0][1], FaultInjected)
        # the pre-crash approximation survives in the timeline
        assert res.final_values["F"] == 4

    def test_strict_raises(self):
        auto = pipeline_automaton()
        with pytest.raises(ExecutionError, match="failed"):
            auto.run_simulated(total_cores=2.0, strict=True,
                               injector=FaultInjector.crash("f", at=4))

    def test_degrade_cascades_without_wedging(self):
        auto = pipeline_automaton()
        res = auto.run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="degrade"),
            injector=FaultInjector.crash("f", at=4))
        assert res.degraded_stages == ["f", "g"]
        assert res.final_values["G"] == 40        # g refined on f's v1
        assert not res.completed

    def test_restart_reaches_precise_output(self):
        auto = pipeline_automaton()
        res = auto.run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="restart", max_retries=1),
            injector=FaultInjector.crash("f", at=4))
        assert res.completed
        assert res.stage_reports["f"].attempts == 2
        final = res.timeline.final_record("G")
        assert final.final and final.value == 90

    def test_restart_backoff_costs_virtual_time(self):
        base = pipeline_automaton().run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="restart", max_retries=1),
            injector=FaultInjector.crash("f", at=4))
        delayed = pipeline_automaton().run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="restart", max_retries=1,
                               backoff=7.0),
            injector=FaultInjector.crash("f", at=4))
        assert delayed.completed
        assert delayed.duration >= base.duration + 7.0

    def test_injected_delay_advances_virtual_clock(self):
        clean = pipeline_automaton().run_simulated(total_cores=2.0)
        delayed = pipeline_automaton().run_simulated(
            total_cores=2.0,
            injector=FaultInjector(
                [FaultSpec(stage="f", at=2, kind="delay", delay=5.0)]))
        assert delayed.completed
        assert delayed.duration > clean.duration
        assert delayed.energy == pytest.approx(clean.energy)

    def test_source_crash_before_any_write_degrades_consumer(self):
        """A producer that dies before publishing anything must not
        wedge its consumer: the consumer degrades with an empty
        output."""
        auto = pipeline_automaton()
        res = auto.run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="degrade"),
            injector=FaultInjector.crash("f", at=2))
        assert res.degraded_stages == ["f", "g"]
        assert res.final_values["G"] is None
        assert res.output_records("G") == []

    def test_sync_consumer_not_marked_final_on_aborted_stream(self):
        """When a streaming parent dies mid-stream, the consumer's
        aggregate is an approximation and must not be published as
        final (finality means precision)."""
        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        ch = UpdateChannel("F", capacity=1)

        class Digits(DiffusiveStage):
            def __init__(self):
                super().__init__("f", b_f, (), shape=5,
                                 permutation=SequentialPermutation(),
                                 chunks=5, cost_per_element=1.0,
                                 emit_to=ch)

            def init_state(self, values):
                return {"total": 0}

            def process_chunk(self, state, indices, values):
                state["total"] += int(indices[0]) + 1
                return int(indices[0]) + 1

            def materialize(self, state, count, values):
                return state["total"]

            def precise(self, input_values):
                return 15

        g = SynchronousStage("g", b_g, ch, initial_fn=lambda: 0,
                             update_fn=lambda acc, x: acc + x * x,
                             update_cost=lambda x: 1.0,
                             precise_fn=lambda fv: 55,
                             precise_cost=1.0)
        auto = AnytimeAutomaton([Digits(), g])
        res = auto.run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="degrade"),
            injector=FaultInjector.crash("f", at=8))
        assert "f" in res.degraded_stages
        assert "g" in res.degraded_stages
        g_records = res.output_records("G")
        assert g_records, "g folded at least one update before the crash"
        assert not any(rec.final for rec in g_records)
        # the partial aggregate is a genuine prefix sum of squares
        assert g_records[-1].value in {sum(d * d for d in range(1, k + 1))
                                       for k in range(1, 6)}

    def test_streaming_parent_never_restarts(self):
        """Restarting an emitting stage would double-count updates in
        its consumer; the runtime must degrade it instead."""
        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        ch = UpdateChannel("F")

        class Digits(DiffusiveStage):
            def __init__(self):
                super().__init__("f", b_f, (), shape=5,
                                 permutation=SequentialPermutation(),
                                 chunks=5, cost_per_element=1.0,
                                 emit_to=ch)

            def init_state(self, values):
                return {"total": 0}

            def process_chunk(self, state, indices, values):
                state["total"] += int(indices[0]) + 1
                return int(indices[0]) + 1

            def materialize(self, state, count, values):
                return state["total"]

            def precise(self, input_values):
                return 15

        g = SynchronousStage("g", b_g, ch, initial_fn=lambda: 0,
                             update_fn=lambda acc, x: acc + x,
                             update_cost=lambda x: 1.0,
                             precise_fn=lambda fv: 15,
                             precise_cost=1.0)
        auto = AnytimeAutomaton([Digits(), g])
        res = auto.run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="restart", max_retries=5),
            injector=FaultInjector.crash("f", at=8))
        assert res.stage_reports["f"].attempts == 1   # no restart
        assert res.stage_reports["f"].degraded


class TestReportSurface:
    def test_summary_strings(self):
        auto = pipeline_automaton()
        res = auto.run_simulated(
            total_cores=2.0,
            faults=FaultPolicy(on_failure="degrade"),
            injector=FaultInjector.crash("f", at=4))
        text = res.stage_reports["f"].summary()
        assert "f:" in text and "degraded" in text
        assert "attempts=1" in text

    def test_clean_run_reports(self):
        auto = pipeline_automaton()
        res = auto.run_simulated(total_cores=2.0)
        assert all(r.ok for r in res.stage_reports.values())
        assert res.degraded_stages == [] and res.failed_stages == []


class TestCliFaultFlags:
    def test_fault_inject_with_restart_recovers(self, capsys):
        from repro.cli import main

        code = main(["run", "2dconv", "--size", "16",
                     "--fault-inject", "conv:9",
                     "--on-failure", "restart", "--max-retries", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fault report" in out
        assert "completed" in out

    def test_fault_inject_degrade(self, capsys):
        from repro.cli import main

        code = main(["run", "2dconv", "--size", "16",
                     "--fault-inject", "conv:9",
                     "--on-failure", "degrade"])
        out = capsys.readouterr().out
        assert code == 0
        assert "degraded" in out
