"""Checkpoint/restore subsystem (``repro.ckpt``).

A live anytime run quiesces at an inter-command boundary, serializes to
a self-describing on-disk checkpoint, and restores on *any* executor
with bit-exact continuation.  These tests cover the file format's
structured failure modes, same-executor resume, the full cross-executor
migration matrix (via the restore-differential harness), checkpointing
under a batched command lease, the serving layer's suspend-and-resume
path (park on queue-full, checkpoint on preempt, restore on grant), the
scheduler's persisted runtime-accuracy profile, and fleet worker
re-spawn with checkpoint migration after a SIGKILL.
"""

import os
import signal
import struct
import time

import numpy as np
import pytest

from repro.apps.registry import get_app
from repro.ckpt import (CheckpointError, FORMAT_VERSION, MAGIC,
                        load_checkpoint, read_header, write_checkpoint)
from repro.core.automaton import AnytimeAutomaton
from repro.core.controller import VersionCountStop


def values_equal(a, b):
    if isinstance(a, dict):
        return (set(a) == set(b)
                and all(values_equal(a[k], b[k]) for k in a))
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    return a == b


def interrupted_checkpoint(record, image, path, src="simulated",
                           **launch_kw):
    """Run ``record``'s app on ``src``, interrupt it mid-flight, and
    write a checkpoint to ``path``."""
    automaton = record.build(image)
    if src == "simulated":
        result = automaton.run_simulated(stop=VersionCountStop(2),
                                         checkpoint_at_stop=str(path))
        assert result.stopped_early
        return
    handle = (automaton.launch_processes(**launch_kw)
              if src == "process"
              else automaton.launch_threaded(**launch_kw))
    terminal = automaton.graph.buffers[automaton.terminal_buffer_name]
    deadline = time.monotonic() + 60.0
    while terminal.version < 2 and time.monotonic() < deadline:
        time.sleep(0.002)
    handle.checkpoint(str(path))
    handle.request_stop()
    handle.result()


# -- file format ---------------------------------------------------------

class TestCheckpointFormat:
    @pytest.fixture()
    def ckpt(self, tmp_path):
        record = get_app("2dconv")
        path = tmp_path / "run.rck"
        interrupted_checkpoint(record, record.make_input(16, 0), path)
        return path

    def test_header_readable_without_payload(self, ckpt):
        header = read_header(str(ckpt))
        assert header["format_version"] == FORMAT_VERSION
        assert header["executor"] == "simulated"
        assert len(header["payload_sha256"]) == 64
        assert header["payload_len"] > 0
        assert header["summary"]["live_stages"]

    def test_round_trip_load(self, ckpt):
        header, payload = load_checkpoint(str(ckpt))
        assert header["format_version"] == FORMAT_VERSION
        assert isinstance(payload, dict)

    def test_bad_magic_is_structured_error(self, tmp_path):
        path = tmp_path / "bad.rck"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="magic"):
            read_header(str(path))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_missing_file_is_structured_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_header(str(tmp_path / "absent.rck"))

    def test_truncated_header_is_structured_error(self, ckpt):
        raw = ckpt.read_bytes()
        ckpt.write_bytes(raw[:len(MAGIC) + 2])
        with pytest.raises(CheckpointError):
            read_header(str(ckpt))

    def test_truncated_payload_is_structured_error(self, ckpt):
        raw = ckpt.read_bytes()
        ckpt.write_bytes(raw[:-16])
        # the header itself is intact ...
        read_header(str(ckpt))
        # ... but the payload cannot be trusted
        with pytest.raises(CheckpointError):
            load_checkpoint(str(ckpt))

    def test_corrupted_payload_fails_digest_check(self, ckpt):
        raw = bytearray(ckpt.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(str(ckpt))

    def test_unsupported_format_version_rejected(self, tmp_path):
        path = tmp_path / "future.rck"
        header = (b'{"format_version": 99}')
        path.write_bytes(MAGIC + struct.pack("<I", len(header))
                         + header)
        with pytest.raises(CheckpointError, match="format_version"):
            read_header(str(path))

    def test_restore_from_corrupt_file_never_continues(self, ckpt):
        raw = bytearray(ckpt.read_bytes())
        raw[-1] ^= 0xFF
        ckpt.write_bytes(bytes(raw))
        record = get_app("2dconv")
        with pytest.raises(CheckpointError):
            AnytimeAutomaton.restore(
                str(ckpt),
                builder=lambda: record.build(record.make_input(16, 0)))

    def test_write_checkpoint_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "a.rck"
        write_checkpoint(str(path), {"k": 1},
                         header_extra={"name": "x"})
        assert read_header(str(path))["name"] == "x"
        assert [p.name for p in tmp_path.iterdir()] == ["a.rck"]


# -- resume and migration ------------------------------------------------

@pytest.mark.check
class TestSameExecutorResume:
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("executor",
                             ["simulated", "threaded", "process"])
    def test_resume_is_bit_exact(self, executor, tmp_path):
        record = get_app("2dconv")
        image = record.make_input(32, 1)
        tname = record.build(image).terminal_buffer_name
        reference = record.build(image).run_simulated()
        path = tmp_path / f"{executor}.rck"
        interrupted_checkpoint(record, image, path, src=executor)
        resumed = AnytimeAutomaton.restore(
            str(path), builder=lambda: record.build(image))
        runner = {"simulated": resumed.run_simulated,
                  "threaded": lambda: resumed.run_threaded(
                      timeout_s=120.0),
                  "process": lambda: resumed.run_processes(
                      timeout_s=120.0)}[executor]
        result = runner()
        assert result.completed
        assert values_equal(result.final_values[tname],
                            reference.final_values[tname])
        finals = [r for r in result.timeline.for_buffer(tname)
                  if r.final]
        assert len(finals) == 1

    @pytest.mark.timeout(120)
    def test_simulated_resume_ladder_is_exact(self, tmp_path):
        """A sim->sim resume replays the *identical* version ladder the
        uninterrupted run would have published (determinism, not just
        final-value agreement)."""
        record = get_app("dwt53")
        image = record.make_input(32, 2)
        baseline = record.build(image)
        tname = baseline.terminal_buffer_name
        reference = baseline.run_simulated()
        ref_ladder = [r.version
                      for r in reference.timeline.for_buffer(tname)]
        path = tmp_path / "sim.rck"
        interrupted_checkpoint(record, image, path)
        resumed = AnytimeAutomaton.restore(
            str(path), builder=lambda: record.build(image))
        result = resumed.run_simulated()
        ladder = [r.version for r in result.timeline.for_buffer(tname)]
        assert ladder == ref_ladder
        assert values_equal(result.final_values[tname],
                            reference.final_values[tname])


@pytest.mark.check
@pytest.mark.slow
class TestCrossExecutorMigration:
    """All six cross-executor (src, dst) pairs per app, via the
    restore-differential harness (which additionally checks invariants,
    gap-free ladders and source version counts on every leg)."""

    CROSS_PAIRS = [(a, b)
                   for a in ("simulated", "threaded", "process")
                   for b in ("simulated", "threaded", "process")
                   if a != b]

    @pytest.mark.timeout(600)
    @pytest.mark.parametrize("app", ["2dconv", "kmeans", "dwt53"])
    def test_all_cross_pairs_bit_exact(self, app, tmp_path):
        from repro.check import run_restore_differential

        report = run_restore_differential(
            app=app, size=32, seed=0, pairs=self.CROSS_PAIRS,
            workdir=str(tmp_path), timeout_s=120.0)
        assert report.ok, report.mismatches
        assert len(report.legs) == len(self.CROSS_PAIRS)


@pytest.mark.check
class TestCheckpointUnderLease:
    @pytest.mark.timeout(180)
    @pytest.mark.parametrize("lease_k", [2, 8])
    def test_leased_commands_drain_before_capture(self, lease_k,
                                                  tmp_path):
        """Checkpointing a process run that batches commands under a
        lease (lease_k > 1) must quiesce the outstanding batch first:
        the continuation is still bit-exact and publishes exactly one
        final version."""
        record = get_app("2dconv")
        image = record.make_input(32, 3)
        tname = record.build(image).terminal_buffer_name
        reference = record.build(image).run_simulated()
        path = tmp_path / "leased.rck"
        interrupted_checkpoint(record, image, path, src="process",
                               lease_k=lease_k)
        resumed = AnytimeAutomaton.restore(
            str(path), builder=lambda: record.build(image))
        result = resumed.run_threaded(timeout_s=120.0)
        assert result.completed
        assert values_equal(result.final_values[tname],
                            reference.final_values[tname])
        finals = [r for r in result.timeline.for_buffer(tname)
                  if r.final]
        assert len(finals) == 1


# -- serving-layer suspend-and-resume ------------------------------------

@pytest.mark.serve
@pytest.mark.timeout(180)
class TestServerSuspendResume:
    def test_overload_parks_and_resumes_instead_of_shedding(
            self, tmp_path):
        """With a resume_dir, a 2-slot server under 4x overload sheds
        nothing: queue-full submissions park as RESUMABLE, preemption
        suspends runs to disk, and every request finishes with the
        bit-exact precise answer.  No checkpoint files survive."""
        from repro.serve import SLO, AnytimeServer
        from repro.serve.bench import calibrate_app
        from repro.serve.fleet import value_digest

        calib = calibrate_app(app="2dconv", size=24)
        solo = calib["builder"]().run_threaded(timeout_s=60.0)
        ref_digest = value_digest(
            list(solo.final_values.values())[0])
        with AnytimeServer(slots=2, queue_limit=2, quantum_s=0.01,
                           resume_dir=str(tmp_path)) as server:
            sessions = [server.submit(calib["builder"],
                                      SLO(deadline_s=120.0),
                                      metric=calib["metric"],
                                      name=f"r{i}")
                        for i in range(8)]
            assert server.drain(timeout_s=150.0)
            stats = server.stats()
        for session in sessions:
            result = session.result(timeout_s=0.0)
            assert result.state.value == "completed", (
                session.name, result.state, result.errors)
            assert result.snapshot.final
            assert value_digest(result.snapshot.value) == ref_digest
        assert stats["shed"] == 0
        assert stats["parked"] > 0
        assert stats["requeued"] == stats["parked"]
        assert stats["restores"] == stats["suspends"]
        assert sum(s.result(0.0).restores for s in sessions) \
            == stats["restores"]
        assert not os.listdir(tmp_path)

    def test_without_resume_dir_overload_still_sheds(self):
        """The suspend path is opt-in: the same overload on a server
        without a resume_dir keeps the classic shed behavior."""
        from repro.serve import SLO, AnytimeServer
        from repro.serve.bench import calibrate_app

        calib = calibrate_app(app="2dconv", size=24)
        with AnytimeServer(slots=1, queue_limit=1,
                           quantum_s=0.01) as server:
            sessions = [server.submit(calib["builder"],
                                      SLO(deadline_s=120.0),
                                      metric=calib["metric"],
                                      name=f"r{i}", key=None)
                        for i in range(6)]
            assert server.drain(timeout_s=120.0)
            stats = server.stats()
        assert stats["shed"] > 0
        assert stats["parked"] == 0
        states = {s.result(0.0).state.value for s in sessions}
        assert states <= {"completed", "shed"}


# -- persisted runtime-accuracy profiles ---------------------------------

class TestProfilePersistence:
    @staticmethod
    def profile():
        from repro.metrics.profiles import RuntimeAccuracyProfile

        p = RuntimeAccuracyProfile(label="test")
        p.add(0.1, 5.0)
        p.add(0.5, 18.0)
        p.add(1.0, 25.0)
        return p

    def test_save_then_load_round_trips_curve(self, tmp_path):
        from repro.metrics.profiles import RuntimeAccuracyProfile
        from repro.serve.scheduler import MarginalGainPolicy

        path = tmp_path / "profile.json"
        saver = MarginalGainPolicy(self.profile(), baseline_wall_s=1.0,
                                   profile_path=str(path))
        assert saver.save_profile()
        flat = RuntimeAccuracyProfile(label="flat")
        flat.add(1.0, 1.0)
        loader = MarginalGainPolicy(flat, baseline_wall_s=1.0,
                                    profile_path=str(path))
        assert loader.load_profile()
        assert [(p.runtime, p.snr_db) for p in loader.profile.points] \
            == [(p.runtime, p.snr_db) for p in self.profile().points]

    def test_load_without_file_is_a_noop(self, tmp_path):
        from repro.serve.scheduler import MarginalGainPolicy

        policy = MarginalGainPolicy(
            self.profile(), baseline_wall_s=1.0,
            profile_path=str(tmp_path / "absent.json"))
        before = list(policy.profile.points)
        assert not policy.load_profile()
        assert policy.profile.points == before
        assert not MarginalGainPolicy(
            self.profile(), baseline_wall_s=1.0).load_profile()

    @pytest.mark.serve
    @pytest.mark.timeout(60)
    def test_server_lifecycle_persists_profile(self, tmp_path):
        """start() adopts a previously saved curve; shutdown() writes
        the active one back."""
        from repro.serve import AnytimeServer
        from repro.serve.scheduler import MarginalGainPolicy

        path = tmp_path / "profile.json"
        first = MarginalGainPolicy(self.profile(), baseline_wall_s=1.0,
                                   profile_path=str(path))
        with AnytimeServer(slots=1, policy=first):
            pass
        assert path.exists()
        flat = self.profile()
        flat.add(2.0, 26.0)        # a point the saved curve lacks
        second = MarginalGainPolicy(flat, baseline_wall_s=1.0,
                                    profile_path=str(path))
        with AnytimeServer(slots=1, policy=second):
            # start() replaced the constructor's curve with the saved one
            assert len(second.profile.points) == 3


# -- fleet re-spawn and checkpoint migration -----------------------------

@pytest.mark.serve
@pytest.mark.slow
@pytest.mark.timeout(300)
class TestFleetRespawnAndMigration:
    def test_three_worker_fleet_returns_to_three_after_sigkill(
            self, tmp_path):
        from repro.serve.router import FleetRouter, summarize_fleet

        config = {"slots": 1, "queue_limit": 6, "quantum_s": 0.02}
        with FleetRouter(workers=3, worker_config=config,
                         resume_dir=str(tmp_path)) as fleet:
            requests = [fleet.submit("2dconv", size=96, seed=i,
                                     slo={"deadline_s": 300.0})
                        for i in range(9)]
            time.sleep(0.5)
            with fleet._lock:
                victim = next((l for l in fleet._links if l.inflight),
                              fleet._links[0])
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while (fleet.alive_workers() < 3
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            alive = fleet.alive_workers()
            assert fleet.drain(timeout_s=240.0)
            summary = summarize_fleet(requests)
            stats = fleet.aggregate_stats()["router"]
        assert alive == 3
        assert stats["worker_deaths"] >= 1
        assert stats["respawns"] >= 1
        assert summary["failed"] == 0
        assert summary["completed"] == 9

    def test_orphans_migrate_from_dead_workers_checkpoints(
            self, tmp_path):
        """Kill a worker that provably holds suspend checkpoints
        (frozen with SIGSTOP first, so none can be consumed between
        the check and the kill): its orphaned requests restore on the
        replacement from the last checkpoint instead of starting over,
        and still finish with a valid answer."""
        from repro.serve.router import FleetRouter, summarize_fleet

        config = {"slots": 1, "queue_limit": 6, "quantum_s": 0.02}
        with FleetRouter(workers=3, worker_config=config,
                         resume_dir=str(tmp_path)) as fleet:
            requests = [fleet.submit("2dconv", size=128, seed=i,
                                     slo={"deadline_s": 300.0})
                        for i in range(9)]
            victim = None
            deadline = time.monotonic() + 60.0
            while victim is None and time.monotonic() < deadline:
                with fleet._lock:
                    candidates = [l for l in fleet._links if l.inflight]
                for link in candidates:
                    os.kill(link.process.pid, signal.SIGSTOP)
                    workdir = tmp_path / f"w{link.index}"
                    if (link.inflight and workdir.is_dir()
                            and any(workdir.iterdir())):
                        victim = link        # frozen, checkpoints pinned
                        break
                    os.kill(link.process.pid, signal.SIGCONT)
                if victim is None:
                    time.sleep(0.02)
            assert victim is not None, "no worker suspended a run"
            os.kill(victim.process.pid, signal.SIGKILL)
            assert fleet.drain(timeout_s=240.0)
            summary = summarize_fleet(requests)
            stats = fleet.aggregate_stats()["router"]
            alive = fleet.alive_workers()
        assert alive == 3
        assert stats["respawns"] >= 1
        assert stats["migrated"] >= 1, stats
        assert summary["failed"] == 0
        assert summary["completed"] == 9
