"""Smoke tests for the benchmark harness (small sizes)."""

import math
import os
from unittest import mock

import pytest

from repro.bench.experiments import (ablation_locality,
                                     ablation_scheduling,
                                     ablation_threads,
                                     fig02_pipeline_schedule,
                                     fig10_organizations, fig11_conv2d,
                                     fig16_conv2d_output,
                                     fig19_precision, fig20_sram)
from repro.bench.harness import (FigureData, bench_cores, bench_size,
                                 format_rows)


class TestHarness:
    def test_bench_size_default_and_override(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_BENCH_SIZE", None)
            assert bench_size(128) == 128
        with mock.patch.dict(os.environ, {"REPRO_BENCH_SIZE": "64"}):
            assert bench_size() == 64

    def test_bench_size_rejects_tiny(self):
        with mock.patch.dict(os.environ, {"REPRO_BENCH_SIZE": "4"}):
            with pytest.raises(ValueError):
                bench_size()

    def test_bench_cores_override(self):
        with mock.patch.dict(os.environ, {"REPRO_BENCH_CORES": "8"}):
            assert bench_cores() == 8.0

    @pytest.mark.parametrize("raw", ["abc", "12.5.1", ""])
    def test_bench_size_rejects_non_numeric(self, raw):
        with mock.patch.dict(os.environ, {"REPRO_BENCH_SIZE": raw}):
            with pytest.raises(ValueError,
                               match="REPRO_BENCH_SIZE"):
                bench_size()

    @pytest.mark.parametrize("raw", ["0", "-32"])
    def test_bench_size_rejects_non_positive(self, raw):
        with mock.patch.dict(os.environ, {"REPRO_BENCH_SIZE": raw}):
            with pytest.raises(ValueError,
                               match="REPRO_BENCH_SIZE"):
                bench_size()

    @pytest.mark.parametrize("raw", ["many", "", "0", "-4", "inf",
                                     "nan"])
    def test_bench_cores_rejects_bad_values(self, raw):
        with mock.patch.dict(os.environ, {"REPRO_BENCH_CORES": raw}):
            with pytest.raises(ValueError,
                               match="REPRO_BENCH_CORES"):
                bench_cores()

    def test_trace_dir_captures_run_profile(self, tmp_path):
        import json

        import numpy as np

        from repro.anytime.permutations import TreePermutation
        from repro.bench.harness import run_profile
        from repro.core.automaton import AnytimeAutomaton
        from repro.core.buffer import VersionedBuffer
        from repro.core.mapstage import MapStage

        def build():
            img = np.arange(64, dtype=np.float64).reshape(8, 8)
            b_in = VersionedBuffer("in")
            b_out = VersionedBuffer("out")
            stage = MapStage(
                "m", b_out, (b_in,),
                lambda idx, im: np.asarray(im).reshape(-1)[idx] * 2,
                shape=(8, 8), dtype=np.float64,
                permutation=TreePermutation(), chunks=4)
            return AnytimeAutomaton([stage], external={"in": img})

        with mock.patch.dict(os.environ, {"REPRO_BENCH_TRACE_DIR":
                                          str(tmp_path)}):
            run_profile(build, cores=4.0)
        files = [f for f in os.listdir(tmp_path)
                 if f.endswith(".json")]
        assert len(files) == 1
        doc = json.load(open(tmp_path / files[0]))
        assert doc["traceEvents"]

    def test_figure_data_rejects_ragged_rows(self):
        fig = FigureData("F", "t", headers=("a", "b"))
        with pytest.raises(ValueError):
            fig.add(1)

    def test_render_includes_notes_and_rows(self):
        fig = FigureData("Figure X", "demo", headers=("k", "v"))
        fig.add("x", 1.5)
        fig.note("hello")
        text = fig.render()
        assert "Figure X" in text and "hello" in text
        assert "1.500" in text

    def test_format_rows_inf(self):
        text = format_rows(("v",), [(math.inf,), (-math.inf,)])
        assert "inf" in text and "-inf" in text

    def test_format_rows_empty(self):
        assert format_rows(("a", "b"), []) == "a  b"


class TestExperimentsSmoke:
    """Each experiment runs end to end at a reduced size and produces a
    well-formed figure."""

    def test_fig02(self):
        fig = fig02_pipeline_schedule()
        assert fig.rows and len(fig.headers) == 3

    def test_fig10(self):
        fig = fig10_organizations(m=16)
        assert len(fig.rows) == 5

    def test_fig11_small(self):
        fig = fig11_conv2d(size=32)
        assert math.isinf(fig.rows[-1][1])

    def test_fig16_small(self):
        fig = fig16_conv2d_output(size=32)
        assert len(fig.rows) == 3

    def test_fig19_small(self):
        fig = fig19_precision(size=32)
        bits_seen = {row[0] for row in fig.rows}
        assert bits_seen == {8, 6, 4, 2}

    def test_fig20_small(self):
        fig = fig20_sram(size=32)
        labels = {row[0] for row in fig.rows}
        assert labels == {"0%", "0.00001%", "0.001%"}

    def test_ablation_threads_small(self):
        fig = ablation_threads(size=256)
        assert all(isinstance(row[-1], bool) for row in fig.rows)

    def test_ablation_scheduling(self):
        fig = ablation_scheduling(cost=10.0)
        assert len(fig.rows) == 8   # 4 policies x 2 shapes

    def test_ablation_locality_small(self):
        fig = ablation_locality(elements=2048)
        assert {row[0] for row in fig.rows} == \
            {"sequential", "tree", "lfsr"}


class TestPlaneBench:
    def test_profiles_shape_on_simulated(self):
        """Structure check on the cheap executor: both protocol modes
        measured, all the gate's metrics present."""
        from repro.bench.plane import data_plane_profiles

        data = data_plane_profiles(size=16, apps=("2dconv",),
                                   executors=("simulated",))
        cell = data["apps"]["2dconv"]["simulated"]
        for mode, k in (("sync", 1), ("leased", 8)):
            row = cell[mode]
            assert row["lease_k"] == k
            assert row["completed"]
            assert row["versions"] > 0
            assert row["versions_per_s"] > 0
            assert row["round_trips"] == 0   # no pipes in-process
            assert row["snapshot_latency_s"] > 0

    def test_profiles_reject_degenerate_lease(self):
        from repro.bench.plane import data_plane_profiles

        with pytest.raises(ValueError, match="lease_k"):
            data_plane_profiles(size=16, lease_k=1)

    def test_baseline_comparison_bands(self):
        from repro.bench.plane import compare_plane_baseline

        def doc(rpv, reduction, vps, cpus=4):
            return {"cpu_count": cpus, "apps": {"2dconv": {"process": {
                "leased": {"round_trips_per_version": rpv,
                           "versions_per_s": vps},
                "round_trip_reduction": reduction}}}}

        base = doc(rpv=0.2, reduction=5.0, vps=100.0)
        # identical run: clean
        assert compare_plane_baseline(doc(0.2, 5.0, 100.0), base) == []
        # inside the band: clean
        assert compare_plane_baseline(doc(0.24, 4.1, 99.0), base) == []
        # chattier protocol and collapsed reduction: two problems
        problems = compare_plane_baseline(doc(0.5, 2.0, 100.0), base)
        assert len(problems) == 2
        # wall clock only gated on the same machine class
        slow = doc(0.2, 5.0, 10.0)
        assert compare_plane_baseline(slow, base,
                                      wall_tolerance=0.6)
        slow_other_box = doc(0.2, 5.0, 10.0, cpus=64)
        assert compare_plane_baseline(slow_other_box, base,
                                      wall_tolerance=0.6) == []
        # an app missing from the fresh doc is itself a regression
        assert compare_plane_baseline({"cpu_count": 4, "apps": {}},
                                      base)
