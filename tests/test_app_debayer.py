"""Tests for the debayer application (paper Figure 14)."""

import math

import numpy as np
import pytest

from repro.apps.debayer import (build_debayer_automaton, debayer_elements,
                                debayer_precise)
from repro.data.images import bayer_mosaic


class TestDemosaic:
    def test_constant_mosaic_gives_constant_rgb(self):
        mosaic = np.full((16, 16), 99, dtype=np.uint8)
        rgb = debayer_precise(mosaic)
        assert (rgb == 99).all()
        assert rgb.shape == (16, 16, 3)

    def test_known_sites_pass_through(self):
        """At an R site the red output equals the mosaic value; same for
        G and B sites."""
        rng = np.random.default_rng(3)
        mosaic = rng.integers(0, 256, size=(8, 8)).astype(np.uint8)
        rgb = debayer_precise(mosaic)
        assert np.array_equal(rgb[0::2, 0::2, 0], mosaic[0::2, 0::2])
        assert np.array_equal(rgb[0::2, 1::2, 1], mosaic[0::2, 1::2])
        assert np.array_equal(rgb[1::2, 0::2, 1], mosaic[1::2, 0::2])
        assert np.array_equal(rgb[1::2, 1::2, 2], mosaic[1::2, 1::2])

    def test_interpolation_averages_neighbours(self):
        """A G value at an R site is the rounded mean of its four
        cross neighbours."""
        mosaic = np.zeros((6, 6), dtype=np.uint8)
        mosaic[1, 2] = 100   # G above (2,2)
        mosaic[3, 2] = 50    # G below
        mosaic[2, 1] = 30    # G left
        mosaic[2, 3] = 20    # G right
        rgb = debayer_precise(mosaic)
        assert rgb[2, 2, 1] == (100 + 50 + 30 + 20 + 2) // 4

    def test_elements_match_precise(self, small_mosaic):
        ref = debayer_precise(small_mosaic)
        idx = np.array([0, 17, 999, small_mosaic.size - 1])
        vals = debayer_elements(idx, small_mosaic)
        flat_ref = ref.reshape(-1, 3)
        assert np.array_equal(vals, flat_ref[idx])

    def test_smooth_scene_reconstruction_close(self):
        """On a smooth scene, demosaicing nearly recovers the original
        colours."""
        from repro.data.images import clustered_image
        rgb = clustered_image(32, seed=2, clusters=0)
        mosaic = bayer_mosaic(32, seed=2)
        rec = debayer_precise(mosaic).astype(np.float64)
        err = np.abs(rec - rgb.astype(np.float64)).mean()
        assert err < 30.0


class TestAutomaton:
    def test_single_diffusive_stage(self, small_mosaic):
        auto = build_debayer_automaton(small_mosaic)
        assert len(auto.graph.stages) == 1
        assert auto.graph.stages[0].anytime

    def test_final_output_bit_exact(self, small_mosaic):
        auto = build_debayer_automaton(small_mosaic, chunks=8)
        ref = debayer_precise(small_mosaic)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("rgb")
        assert np.array_equal(final.value, ref)

    def test_intermediate_versions_are_rgb_shaped(self, small_mosaic):
        auto = build_debayer_automaton(small_mosaic, chunks=8)
        res = auto.run_simulated(total_cores=8.0)
        for rec in res.output_records("rgb"):
            assert rec.value.shape == small_mosaic.shape + (3,)
            assert rec.value.dtype == np.uint8

    def test_profile_monotone(self, small_mosaic):
        auto = build_debayer_automaton(small_mosaic, chunks=8)
        res = auto.run_simulated(total_cores=8.0)
        prof = auto.profile(res, total_cores=8.0)
        assert prof.is_monotonic(1.0)
        assert math.isinf(prof.final_snr_db)
