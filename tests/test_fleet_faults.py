"""Network-fault conformance for the TCP fleet + fleet-wide memo.

The cross-host story has two failure modes fork never had: a worker
*process* can die (SIGKILL) and a worker *connection* can drop while
the process lives.  Both must preserve the anytime guarantee — every
orphaned request re-dispatches to a survivor, suspend checkpoints ship
in-band (``migrated >= 1`` when one was provably pinned), finals stay
bit-exact, and no request ever observes two terminal answers.

The fleet-wide memo rides the same machinery: a sealed final answered
from the router's TTL store must be byte-identical to the recompute it
replaced, survive the sealing worker's death, expire on schedule, and
carry ``violations in (0, None)`` when workers run with an attached
invariant Checker.
"""

import os
import signal
import socket
import threading
import time

import pytest

from repro.serve.router import FleetRouter, summarize_fleet
from repro.serve.transport import spawn_local_tcp_worker

pytestmark = [pytest.mark.serve, pytest.mark.faults,
              pytest.mark.timeout(300)]

SLO_OK = {"deadline_s": 120.0}


def _spawn_tcp_fleet(n, config, resume_root=None):
    procs, endpoints = [], []
    for i in range(n):
        worker_config = dict(config)
        if resume_root is not None:
            worker_config["resume_dir"] = os.path.join(
                str(resume_root), f"w{i}")
        process, endpoint = spawn_local_tcp_worker(worker_config)
        procs.append(process)
        endpoints.append(endpoint)
    return procs, endpoints


def _reap(procs):
    for process in procs:
        if process.is_alive():
            process.terminate()
        process.join(timeout=10.0)


@pytest.mark.slow
class TestTcpWorkerSigkill:
    def test_sigkill_migrates_in_band_and_finishes_bit_exact(
            self, tmp_path):
        """SIGSTOP-pin a TCP worker holding suspend checkpoints, then
        SIGKILL it: orphans must migrate via in-band ``ckpt_*`` frames
        (TCP workers share no filesystem with their replacement — there
        is none), and every final must match the precise in-process
        reference bit-exactly."""
        from repro.apps.registry import get_app
        from repro.serve.fleet import value_digest

        seeds = list(range(9))
        spec = get_app("2dconv")
        reference = {
            seed: value_digest(
                spec.build(spec.make_input(96, seed)).precise_output())
            for seed in seeds}

        config = {"slots": 1, "queue_limit": 6, "quantum_s": 0.02}
        procs, endpoints = _spawn_tcp_fleet(3, config,
                                            resume_root=tmp_path)
        try:
            with FleetRouter(endpoints=endpoints,
                             resume_dir=str(tmp_path),
                             worker_config=config) as fleet:
                requests = [fleet.submit("2dconv", size=96, seed=seed,
                                         slo={"deadline_s": 300.0})
                            for seed in seeds]
                victim = None
                deadline = time.monotonic() + 60.0
                while victim is None and time.monotonic() < deadline:
                    with fleet._lock:
                        candidates = [l for l in fleet._links
                                      if l.inflight]
                    for link in candidates:
                        pid = procs[link.index].pid
                        os.kill(pid, signal.SIGSTOP)
                        workdir = tmp_path / f"w{link.index}"
                        if (link.inflight and workdir.is_dir()
                                and any(f.name.endswith(".rck")
                                        for f in workdir.iterdir())):
                            victim = link   # frozen, checkpoints pinned
                            break
                        os.kill(pid, signal.SIGCONT)
                    if victim is None:
                        time.sleep(0.02)
                assert victim is not None, "no worker pinned a ckpt"
                os.kill(procs[victim.index].pid, signal.SIGKILL)
                assert fleet.drain(timeout_s=240.0)
                summary = summarize_fleet(requests)
                stats = fleet.aggregate_stats()["router"]
                alive = fleet.alive_workers()
        finally:
            _reap(procs)

        assert alive == 2                  # TCP deaths are terminal
        assert stats["worker_deaths"] >= 1
        assert stats["respawns"] == 0      # nothing to re-fork
        assert stats["migrated"] >= 1, stats
        assert summary["failed"] == 0
        assert summary["completed"] == 9
        for request in requests:
            out = request.result(timeout_s=0.0)
            if out.get("final"):
                assert out["value_digest"] == reference[request.seed]


class TestConnectionDrop:
    def test_eof_without_death_redispatches_without_duplicate_done(
            self):
        """Sever a live worker's TCP connection (no signal touches the
        process): the router must treat the EOF as a death and
        re-dispatch the in-flight requests to survivors, the orphaned
        worker must notice and exit cleanly rather than crash, and each
        request must see exactly one terminal callback — never a
        duplicate from the half-orphaned worker."""
        config = {"slots": 1, "queue_limit": 8, "quantum_s": 0.02}
        procs, endpoints = _spawn_tcp_fleet(2, config)
        done_counts = {}
        lock = threading.Lock()

        def count(request):
            with lock:
                done_counts[request.rid] = \
                    done_counts.get(request.rid, 0) + 1

        try:
            with FleetRouter(endpoints=endpoints,
                             worker_config=config) as fleet:
                requests = []
                for seed in range(6):
                    request = fleet.submit("2dconv", size=64,
                                           seed=seed, slo=SLO_OK)
                    request.add_done_callback(count)
                    requests.append(request)
                deadline = time.monotonic() + 30.0
                victim = None
                while victim is None and time.monotonic() < deadline:
                    with fleet._lock:
                        victim = next((l for l in fleet._links
                                       if l.inflight), None)
                    if victim is None:
                        time.sleep(0.01)
                assert victim is not None, "no in-flight work to orphan"
                victim.sock.shutdown(socket.SHUT_RDWR)
                assert fleet.drain(timeout_s=120.0)
                summary = summarize_fleet(requests)
                stats = fleet.aggregate_stats()["router"]
            # the severed worker notices EOF and exits cleanly — it was
            # never signalled, so any non-zero exit would be a crash
            procs[victim.index].join(timeout=30.0)
            assert procs[victim.index].exitcode == 0
        finally:
            _reap(procs)

        assert stats["worker_deaths"] == 1
        assert stats["redispatched"] >= 1
        assert summary["completed"] == 6
        assert summary["failed"] == 0
        assert sorted(done_counts) == [r.rid for r in requests]
        assert set(done_counts.values()) == {1}   # no duplicate done


# -- fleet-wide memo ----------------------------------------------------

def fork_fleet(**kwargs):
    config = kwargs.pop("worker_config", {})
    config.setdefault("slots", 2)
    config.setdefault("queue_limit", 16)
    # silence the *worker-local* memo so every hit asserted below is
    # unambiguously the router's fleet-wide store
    config.setdefault("memo_ttl_s", 0.0)
    kwargs.setdefault("respawn", False)
    return FleetRouter(workers=2, worker_config=config, **kwargs)


class TestFleetMemo:
    def test_duplicate_after_seal_answered_without_dispatch(self):
        with fork_fleet() as fleet:
            first = fleet.submit("dwt53", size=16, seed=0, slo=SLO_OK)
            sealed = first.result(timeout_s=60.0)
            assert sealed["state"] == "completed" and sealed["final"]
            dispatched = fleet.counters["dispatched"]

            dup = fleet.submit("dwt53", size=16, seed=0, slo=SLO_OK)
            out = dup.result(timeout_s=10.0)
            assert fleet.counters["dispatched"] == dispatched
            assert fleet.counters["memo_hits"] == 1
        assert out["memo_hit"] and out["fleet_memo"]
        assert out["worker"] is None           # no worker touched it
        assert out["value_digest"] == sealed["value_digest"]

    def test_memo_survives_sealing_workers_death(self):
        with fork_fleet() as fleet:
            first = fleet.submit("dwt53", size=16, seed=3, slo=SLO_OK)
            sealed = first.result(timeout_s=60.0)
            owner = sealed["worker"]
            assert owner is not None

            with fleet._lock:
                victim = fleet._links[owner]
            victim.process.terminate()
            deadline = time.monotonic() + 30.0
            while (fleet.counters["worker_deaths"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert fleet.counters["worker_deaths"] == 1

            dup = fleet.submit("dwt53", size=16, seed=3, slo=SLO_OK)
            out = dup.result(timeout_s=10.0)
        assert out["fleet_memo"]
        assert out["value_digest"] == sealed["value_digest"]

    def test_ttl_expiry_forces_recompute(self):
        with fork_fleet(fleet_memo_ttl_s=0.2) as fleet:
            first = fleet.submit("dwt53", size=16, seed=5, slo=SLO_OK)
            sealed = first.result(timeout_s=60.0)
            time.sleep(0.5)                     # let the entry expire
            dispatched = fleet.counters["dispatched"]
            dup = fleet.submit("dwt53", size=16, seed=5, slo=SLO_OK)
            out = dup.result(timeout_s=60.0)
            assert fleet.counters["memo_hits"] == 0
            assert fleet.counters["dispatched"] == dispatched + 1
        assert not out.get("fleet_memo")
        assert out["value_digest"] == sealed["value_digest"]

    def test_memo_hits_surface_in_aggregate_stats_and_trace(self):
        from repro.core.tracing import InMemorySink

        sink = InMemorySink()
        with fork_fleet(trace=sink) as fleet:
            fleet.submit("dwt53", size=16, seed=7,
                         slo=SLO_OK).result(timeout_s=60.0)
            fleet.submit("dwt53", size=16, seed=7,
                         slo=SLO_OK).result(timeout_s=10.0)
            stats = fleet.aggregate_stats()
        memo = stats["fleet_memo"]
        assert memo["hits"] == 1
        assert memo["size"] == 1
        kinds = {event.kind for event in sink.events}
        assert "fleet.memo_hit" in kinds

    @pytest.mark.check
    def test_checked_workers_report_zero_violations_under_memo(self):
        """With an invariant Checker attached worker-side, computed
        answers must report 0 violations and memo answers None (no run
        happened) — never a positive count."""
        with fork_fleet(worker_config={"check": True}) as fleet:
            requests = [fleet.submit("dwt53", size=16, seed=i % 2,
                                     slo=SLO_OK) for i in range(8)]
            assert fleet.drain(timeout_s=90.0)
            memo_hits = fleet.counters["memo_hits"]
        outs = [r.result(timeout_s=0.0) for r in requests]
        assert all(o["state"] == "completed" for o in outs)
        assert all(o.get("violations") in (0, None) for o in outs)
        checked = [o for o in outs if o.get("violations") == 0]
        assert checked, "no run was actually checked"
        assert memo_hits + sum(1 for o in outs
                               if o.get("coalesced")) > 0
