"""Profile serialization and miscellaneous path coverage."""

import math

import numpy as np
import pytest

from repro.bench.experiments import build_fig2_automaton
from repro.cli import main
from repro.metrics.profiles import RuntimeAccuracyProfile


class TestProfileJson:
    def make(self):
        p = RuntimeAccuracyProfile(label="cal")
        p.add(0.1, 10.5, version=1, energy=3.0)
        p.add(0.4, 20.0, version=2, energy=6.0)
        p.add(1.0, math.inf, version=3, energy=9.0)
        return p

    def test_roundtrip(self):
        p = self.make()
        q = RuntimeAccuracyProfile.from_json(p.to_json())
        assert q.label == p.label
        assert q.to_rows() == p.to_rows()
        assert [pt.energy for pt in q] == [pt.energy for pt in p]

    def test_negative_infinity(self):
        p = RuntimeAccuracyProfile()
        p.add(0.1, -math.inf)
        q = RuntimeAccuracyProfile.from_json(p.to_json())
        assert q.points[0].snr_db == -math.inf

    def test_save_load(self, tmp_path):
        p = self.make()
        path = tmp_path / "profile.json"
        p.save(path)
        q = RuntimeAccuracyProfile.load(path)
        assert q.to_rows() == p.to_rows()

    def test_planner_accepts_loaded_profile(self, tmp_path):
        from repro.metrics.planning import DeadlinePlanner

        path = tmp_path / "p.json"
        self.make().save(path)
        planner = DeadlinePlanner(margin=1.0)
        planner.calibrate(RuntimeAccuracyProfile.load(path))
        assert planner.budget_for(15.0) == pytest.approx(0.4)


class TestCliDynamic:
    def test_run_with_dynamic_flag(self, capsys):
        assert main(["run", "histeq", "--size", "32", "--dynamic"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out


class TestTimelineMisc:
    def test_last_value_and_final_record(self):
        auto = build_fig2_automaton(cost=10.0)
        res = auto.run_simulated(total_cores=4.0)
        tl = res.timeline
        assert tl.final_record("O") is not None
        assert tl.last_value("O") is not None
        assert tl.last_value("F") is None      # unwatched
        assert tl.final_record("nonexistent") is None

    def test_profile_requires_watched_buffer(self):
        auto = build_fig2_automaton(cost=10.0)
        res = auto.run_simulated(total_cores=4.0)
        with pytest.raises(ValueError, match="watched"):
            res.timeline.profile("F", np.zeros(4), baseline_cost=1.0)

    def test_profile_rejects_bad_baseline(self):
        auto = build_fig2_automaton(cost=10.0)
        res = auto.run_simulated(total_cores=4.0)
        with pytest.raises(ValueError, match="positive"):
            res.timeline.profile("O", np.zeros(4), baseline_cost=0.0)

