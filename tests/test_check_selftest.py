"""Table-driven self-test suite: every known-bad automaton must be
caught under exactly its expected invariant, on every executor it can
run on."""

import pytest

from repro.check import SELF_TEST_CASES, run_self_test
from repro.check.invariants import INVARIANTS

pytestmark = pytest.mark.check

# (case, executor) axes: tamper cases are executor-independent, live
# cases fan out over the executors the breakage is observable on
CASE_RUNS = [
    (case, executor)
    for case in SELF_TEST_CASES
    for executor in (case.executors if case.mode == "live"
                     else ("trace",))
]


class TestTable:
    def test_every_invariant_class_has_a_case(self):
        covered = {case.invariant for case in SELF_TEST_CASES}
        assert covered == set(INVARIANTS)

    def test_case_names_unique(self):
        names = [case.name for case in SELF_TEST_CASES]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize(
        "case,executor", CASE_RUNS,
        ids=[f"{c.name}-{e}" for c, e in CASE_RUNS])
    @pytest.mark.timeout(120)
    def test_known_bad_automaton_is_caught(self, case, executor):
        if executor == "process":
            pytest.importorskip("multiprocessing.shared_memory")
        outcome = case.evaluate(executor)
        assert outcome.caught, (
            f"{case.name} on {executor}: expected {case.invariant}, "
            f"checker found only {outcome.found}")
        assert not outcome.stray, (
            f"{case.name} on {executor}: stray violations "
            f"{outcome.stray} beyond allowed "
            f"{set(case.allowed) | {case.invariant}}")


class TestRunner:
    @pytest.mark.timeout(120)
    def test_full_self_test_passes(self):
        report = run_self_test(executors=("simulated", "threaded"))
        assert report.ok, report.summary()

    @pytest.mark.timeout(120)
    def test_report_shape(self):
        report = run_self_test(executors=("simulated",))
        payload = report.to_dict()
        assert payload["report"] == "checker-self-test"
        assert payload["ok"] is True
        assert payload["cases"] == len(report.outcomes)
        # a clean-run control is part of the table
        assert any(o["case"] == "clean-control"
                   for o in payload["outcomes"])
