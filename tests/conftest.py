"""Shared fixtures for the test suite."""

import signal

import numpy as np
import pytest

from repro.data import bayer_mosaic, clustered_image, scene_image


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "faults: fault-tolerance / fault-injection tests")
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than "
        "`seconds` (lightweight SIGALRM watchdog; no-op where "
        "SIGALRM is unavailable)")


@pytest.fixture(autouse=True)
def _watchdog(request):
    """A conftest-level stand-in for pytest-timeout.

    Threaded-executor bugs tend to wedge the whole suite (a stage
    thread never wakes, ``run()`` joins forever).  Tests marked
    ``@pytest.mark.timeout(s)`` get a SIGALRM that raises in the main
    thread, turning a hang into a prompt failure.  Only armed on
    platforms with SIGALRM (everywhere tier-1 runs).
    """
    marker = request.node.get_closest_marker("timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = float(marker.args[0]) if marker.args else 60.0

    def _expired(signum, frame):
        raise TimeoutError(
            f"watchdog: test exceeded {seconds:.0f}s (likely a wedged "
            f"threaded executor)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_image():
    """A 64x64 grayscale scene (uint8), session-cached."""
    return scene_image(64, seed=11)


@pytest.fixture(scope="session")
def small_mosaic():
    """A 64x64 Bayer mosaic (uint8), session-cached."""
    return bayer_mosaic(64, seed=12)


@pytest.fixture(scope="session")
def small_rgb():
    """A 32x32 cluster-structured RGB image (uint8), session-cached."""
    return clustered_image(32, seed=13, clusters=4)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
