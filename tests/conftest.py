"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data import bayer_mosaic, clustered_image, scene_image


@pytest.fixture(scope="session")
def small_image():
    """A 64x64 grayscale scene (uint8), session-cached."""
    return scene_image(64, seed=11)


@pytest.fixture(scope="session")
def small_mosaic():
    """A 64x64 Bayer mosaic (uint8), session-cached."""
    return bayer_mosaic(64, seed=12)


@pytest.fixture(scope="session")
def small_rgb():
    """A 32x32 cluster-structured RGB image (uint8), session-cached."""
    return clustered_image(32, seed=13, clusters=4)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
