"""Shared fixtures for the test suite."""

import os
import signal

import numpy as np
import pytest

from repro.data import bayer_mosaic, clustered_image, scene_image

try:
    from hypothesis import HealthCheck, settings as _hyp_settings

    # ``ci``: deterministic and bounded — no wall-clock deadline (CI
    # machines are noisy), a fixed derandomized seed so a red run is
    # reproducible, and capped examples so property tests stay cheap.
    # ``dev``: hypothesis defaults plus deadline=None (the simulated
    # executor's first call can exceed the default 200 ms deadline).
    _hyp_settings.register_profile(
        "ci", deadline=None, max_examples=25, derandomize=True,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow])
    _hyp_settings.register_profile("dev", deadline=None)
    _hyp_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:       # pragma: no cover - hypothesis is a dev dep
    pass


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "faults: fault-tolerance / fault-injection tests")
    config.addinivalue_line(
        "markers",
        "serve: serving-layer tests that hold long-lived server "
        "threads (the watchdog reaps leaked servers on expiry)")
    config.addinivalue_line(
        "markers",
        "check: conformance-subsystem tests (repro.check)")
    config.addinivalue_line(
        "markers",
        "slow: long-running tests (differential harness, fuzzing); "
        "deselect with -m 'not slow' for a quick pass")
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than "
        "`seconds` (lightweight SIGALRM watchdog; no-op where "
        "SIGALRM is unavailable; `timeout(0)` disarms, e.g. for an "
        "intentionally idle server test under a file-level mark)")


@pytest.fixture(autouse=True)
def _watchdog(request):
    """A conftest-level stand-in for pytest-timeout.

    Threaded-executor bugs tend to wedge the whole suite (a stage
    thread never wakes, ``run()`` joins forever).  Tests marked
    ``@pytest.mark.timeout(s)`` get a SIGALRM that raises in the main
    thread, turning a hang into a prompt failure.  Only armed on
    platforms with SIGALRM (everywhere tier-1 runs).

    Serving-layer interplay: a server test that trips the watchdog
    unwinds past its ``with server:`` block by exception while the
    scheduler thread and per-request stage threads are still live —
    those would haunt every later test.  So on expiry (and on teardown
    of any ``serve``-marked test) leaked servers are shut down via the
    serve layer's live-server registry.  A ``serve`` test that is
    *intentionally* idle can opt out of an inherited file-level mark
    with ``@pytest.mark.timeout(0)``.
    """
    marker = request.node.get_closest_marker("timeout")
    serving = request.node.get_closest_marker("serve") is not None

    def _reap_servers():
        if not serving:
            return
        from repro.serve import shutdown_all_servers
        shutdown_all_servers(timeout_s=2.0)

    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        _reap_servers()
        return
    seconds = float(marker.args[0]) if marker.args else 60.0
    if seconds <= 0:       # timeout(0): explicitly disarmed
        yield
        _reap_servers()
        return

    def _expired(signum, frame):
        _reap_servers()
        raise TimeoutError(
            f"watchdog: test exceeded {seconds:.0f}s (likely a wedged "
            f"threaded executor or a stuck serving drain)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        _reap_servers()


@pytest.fixture(scope="session")
def small_image():
    """A 64x64 grayscale scene (uint8), session-cached."""
    return scene_image(64, seed=11)


@pytest.fixture(scope="session")
def small_mosaic():
    """A 64x64 Bayer mosaic (uint8), session-cached."""
    return bayer_mosaic(64, seed=12)


@pytest.fixture(scope="session")
def small_rgb():
    """A 32x32 cluster-structured RGB image (uint8), session-cached."""
    return clustered_image(32, seed=13, clusters=4)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
