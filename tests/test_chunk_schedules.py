"""Tests for chunk scheduling (output granularity, paper IV-C2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anytime.fill import TreeFill
from repro.anytime.permutations import TreePermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.diffusive import chunk_boundaries
from repro.core.mapstage import MapStage


class TestGeometricBoundaries:
    def test_spans_double(self):
        spans = chunk_boundaries(1024, 8, schedule="geometric")
        sizes = [b - a for a, b in spans]
        assert sizes[0] < sizes[-1]
        # later spans roughly double (rounding aside)
        assert sizes[-1] >= 1.5 * sizes[-2]

    def test_full_coverage(self):
        spans = chunk_boundaries(1000, 7, schedule="geometric")
        covered = [i for a, b in spans for i in range(a, b)]
        assert covered == list(range(1000))

    @given(st.integers(min_value=1, max_value=5000),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_coverage_property(self, n, chunks):
        for schedule in ("uniform", "geometric"):
            spans = chunk_boundaries(n, chunks, schedule=schedule)
            assert spans[0][0] == 0
            assert spans[-1][1] == n
            for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
                assert b1 == a2
                assert b1 > a1

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            chunk_boundaries(10, 2, schedule="fibonacci")

    def test_rejects_bad_growth(self):
        with pytest.raises(ValueError, match="growth"):
            chunk_boundaries(10, 2, schedule="geometric", growth=1.0)


class TestGeometricStage:
    def make_auto(self, schedule):
        img = np.arange(1024, dtype=np.float64).reshape(32, 32)
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")
        stage = MapStage(
            "m", b_out, (b_in,),
            lambda idx, im: np.asarray(im).reshape(-1)[idx] + 1,
            shape=(32, 32), dtype=np.float64,
            permutation=TreePermutation(), fill=TreeFill(spatial_ndim=2),
            chunks=8, chunk_schedule=schedule)
        return AnytimeAutomaton([stage], external={"in": img}), img

    def test_first_output_much_earlier(self):
        firsts = {}
        for schedule in ("uniform", "geometric"):
            auto, _ = self.make_auto(schedule)
            res = auto.run_simulated(total_cores=4.0)
            firsts[schedule] = res.output_records("out")[0].time
        assert firsts["geometric"] < 0.25 * firsts["uniform"]

    def test_same_version_count_and_final_output(self):
        finals = []
        for schedule in ("uniform", "geometric"):
            auto, img = self.make_auto(schedule)
            res = auto.run_simulated(total_cores=4.0)
            recs = res.output_records("out")
            assert len(recs) == 8
            finals.append(recs[-1].value)
        assert np.array_equal(finals[0], finals[1])

    def test_total_duration_unchanged(self):
        """Granularity redistributes the versions; total work is the
        same."""
        durations = []
        for schedule in ("uniform", "geometric"):
            auto, _ = self.make_auto(schedule)
            res = auto.run_simulated(total_cores=4.0)
            durations.append(res.duration)
        assert durations[0] == pytest.approx(durations[1])

    def test_rejects_unknown_schedule_in_stage(self):
        with pytest.raises(ValueError, match="schedule"):
            MapStage("m", VersionedBuffer("o"), (), lambda i: i,
                     shape=16, chunk_schedule="zeno")
