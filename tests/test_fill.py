"""Tests for output-sampling fill policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anytime.fill import (ConstantFill, MeanFill, NearestFill,
                                TreeFill, sample_levels)
from repro.anytime.permutations import (LfsrPermutation, TreePermutation)


@pytest.fixture
def dense8():
    return np.arange(64, dtype=np.float64).reshape(8, 8)


@pytest.fixture
def order8():
    return TreePermutation().order((8, 8))


class TestTreeFill:
    def test_zero_count_returns_zeros(self, dense8, order8):
        out = TreeFill().fill(dense8, order8, 0)
        assert (out == 0).all()

    def test_full_count_is_exact(self, dense8, order8):
        out = TreeFill().fill(dense8, order8, 64)
        assert np.array_equal(out, dense8)

    def test_single_sample_floods_whole_output(self, dense8, order8):
        out = TreeFill().fill(dense8, order8, 1)
        assert (out == dense8[0, 0]).all()

    def test_four_samples_make_quadrant_blocks(self, dense8, order8):
        """Paper Figure 5 visualization: after 4 samples the output is a
        2x2 image upscaled 4x."""
        out = TreeFill().fill(dense8, order8, 4)
        for r0, c0 in [(0, 0), (0, 4), (4, 0), (4, 4)]:
            block = out[r0:r0 + 4, c0:c0 + 4]
            assert (block == dense8[r0, c0]).all()

    @pytest.mark.parametrize("count", [1, 2, 3, 5, 9, 17, 40, 63])
    def test_computed_entries_always_preserved(self, dense8, order8,
                                               count):
        out = TreeFill().fill(dense8, order8, count)
        idx = order8[:count]
        assert np.array_equal(out.reshape(-1)[idx],
                              dense8.reshape(-1)[idx])

    @given(count=st.integers(min_value=0, max_value=256))
    @settings(max_examples=40, deadline=None)
    def test_every_prefix_produces_valid_output(self, count):
        dense = np.arange(256, dtype=np.float64).reshape(16, 16)
        order = TreePermutation().order((16, 16))
        out = TreeFill().fill(dense, order, count)
        assert out.shape == dense.shape
        assert np.isfinite(out).all()
        if count:
            # every filled value comes from a computed sample
            computed = set(dense.reshape(-1)[order[:count]].tolist())
            assert set(np.unique(out).tolist()) <= computed | {0.0}

    def test_does_not_modify_dense(self, dense8, order8):
        before = dense8.copy()
        TreeFill().fill(dense8, order8, 10)
        assert np.array_equal(dense8, before)

    def test_multichannel_output(self):
        """spatial_ndim restricts the sampled axes (RGB rides along)."""
        dense = np.arange(64 * 3, dtype=np.float64).reshape(8, 8, 3)
        order = TreePermutation().order((8, 8))
        out = TreeFill(spatial_ndim=2).fill(dense, order, 4)
        assert out.shape == dense.shape
        assert np.array_equal(out[0, 0], dense[0, 0])
        assert np.array_equal(out[3, 3], dense[0, 0])

    def test_one_dimensional(self):
        dense = np.arange(16, dtype=np.float64)
        order = TreePermutation().order(16)
        out = TreeFill().fill(dense, order, 2)
        assert (out[:8] == dense[0]).all()
        assert (out[8:] == dense[8]).all()

    def test_order_length_mismatch_raises(self, dense8):
        with pytest.raises(ValueError, match="match"):
            TreeFill().fill(dense8, np.arange(10), 5)

    def test_refinement_is_hierarchical(self):
        """Finer levels overwrite exactly their own blocks."""
        dense = np.arange(64, dtype=np.float64).reshape(8, 8)
        order = TreePermutation().order((8, 8))
        f4 = TreeFill().fill(dense, order, 4)
        f16 = TreeFill().fill(dense, order, 16)
        # the 16-sample fill agrees with the dense data on sampled spots
        idx = order[:16]
        assert np.array_equal(f16.reshape(-1)[idx],
                              dense.reshape(-1)[idx])
        # and is at least as close to the truth everywhere (block-wise)
        err4 = np.abs(f4 - dense).sum()
        err16 = np.abs(f16 - dense).sum()
        assert err16 <= err4


class TestSampleLevels:
    def test_level_zero_is_origin(self):
        order = TreePermutation().order((8, 8))
        levels = sample_levels(order, (8, 8))
        assert levels[0] == 0

    def test_level_counts_form_powers_of_four(self):
        order = TreePermutation().order((16, 16))
        levels = sample_levels(order, (16, 16))
        counts = np.bincount(levels)
        assert counts.tolist() == [1, 3, 12, 48, 192]


class TestNearestFill:
    def test_full_count_exact(self, dense8):
        order = LfsrPermutation().order(64)
        out = NearestFill().fill(dense8, order, 64)
        assert np.array_equal(out, dense8)

    def test_partial_count_uses_nearest_neighbor(self, dense8):
        order = LfsrPermutation().order(64)
        out = NearestFill().fill(dense8, order, 5)
        computed = set(dense8.reshape(-1)[order[:5]].tolist())
        assert set(np.unique(out).tolist()) <= computed

    def test_zero_count(self, dense8):
        out = NearestFill().fill(dense8, LfsrPermutation().order(64), 0)
        assert (out == 0).all()


class TestConstantFill:
    def test_fills_with_value(self, dense8):
        order = np.arange(64)
        out = ConstantFill(value=7.0).fill(dense8, order, 2)
        assert out[0, 0] == dense8[0, 0]
        assert out[7, 7] == 7.0


class TestMeanFill:
    def test_fills_with_running_mean(self, dense8):
        order = np.arange(64)
        out = MeanFill().fill(dense8, order, 4)
        assert np.allclose(out[7, 7], dense8.reshape(-1)[:4].mean())
        assert np.array_equal(out.reshape(-1)[:4],
                              dense8.reshape(-1)[:4])

    def test_zero_count(self, dense8):
        out = MeanFill().fill(dense8, np.arange(64), 0)
        assert (out == 0).all()
