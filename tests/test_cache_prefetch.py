"""Tests for the cache simulator and permutation-aware prefetcher."""

import numpy as np
import pytest

from repro.anytime.permutations import (LfsrPermutation,
                                        SequentialPermutation,
                                        TreePermutation)
from repro.hw.cache import (Cache, CacheConfig, CacheStats,
                            trace_for_permutation)
from repro.hw.prefetch import PermutationPrefetcher, run_prefetched_trace

SMALL = CacheConfig(size_bytes=1024, line_bytes=64, ways=2)


class TestCacheConfig:
    def test_num_sets(self):
        assert SMALL.num_sets == 8

    def test_rejects_nonmultiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, line_bytes=64, ways=1)


class TestCacheBasics:
    def test_first_access_misses_second_hits(self):
        c = Cache(SMALL)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)          # same line
        assert not c.access(64)      # next line

    def test_miss_rate(self):
        c = Cache(SMALL)
        c.access(0)
        c.access(0)
        assert c.stats.miss_rate == pytest.approx(0.5)
        assert c.stats.hits == 1

    def test_empty_stats(self):
        assert CacheStats().miss_rate == 0.0

    def test_lru_eviction_order(self):
        """2-way set: the least recently used line is evicted."""
        c = Cache(SMALL)
        set_stride = SMALL.num_sets * SMALL.line_bytes
        a, b, d = 0, set_stride, 2 * set_stride   # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)          # a is now most recent
        c.access(d)          # evicts b
        assert c.access(a)
        assert not c.access(b)

    def test_sequential_trace_miss_rate_is_line_reuse(self):
        c = Cache(SMALL)
        trace = trace_for_permutation(np.arange(4096), element_bytes=4)
        stats = c.run_trace(trace)
        # 16 elements per 64-byte line -> 1/16 misses
        assert stats.miss_rate == pytest.approx(1 / 16, abs=0.01)


class TestTraceForPermutation:
    def test_addresses(self):
        trace = trace_for_permutation(np.array([0, 2, 1]),
                                      element_bytes=8, base=100)
        assert trace.tolist() == [100, 116, 108]

    def test_rejects_bad_element_size(self):
        with pytest.raises(ValueError):
            trace_for_permutation(np.arange(3), element_bytes=0)


class TestLocality:
    """The paper's IV-C3 claim, quantified."""

    def test_nonsequential_permutations_miss_more(self):
        results = {}
        for perm in (SequentialPermutation(), TreePermutation(),
                     LfsrPermutation(seed=5)):
            cache = Cache(SMALL)
            cache.run_trace(trace_for_permutation(perm.order(4096), 4))
            results[perm.name] = cache.stats.miss_rate
        assert results["sequential"] < 0.1
        assert results["tree"] > 3 * results["sequential"]
        assert results["lfsr"] > 3 * results["sequential"]


class TestPrefetcher:
    def test_recovers_lfsr_locality(self):
        # the cache must be larger than the prefetch window, or the
        # lookahead installs evict each other (set-conflict thrashing)
        big = CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=4)
        order = LfsrPermutation(seed=5).order(4096)
        trace = trace_for_permutation(order, 4)
        plain = Cache(big)
        plain.run_trace(trace)
        fetched = run_prefetched_trace(trace, Cache(big), depth=16)
        assert fetched.miss_rate < 0.5 * plain.stats.miss_rate
        assert fetched.prefetch_hits > 0

    def test_window_larger_than_cache_thrashes(self):
        """Lookahead beyond cache capacity stops helping — the
        prefetched lines evict each other before use."""
        order = LfsrPermutation(seed=5).order(4096)
        trace = trace_for_permutation(order, 4)
        fetched = run_prefetched_trace(trace, Cache(SMALL), depth=16)
        assert fetched.miss_rate > 0.5   # 16 lines of capacity

    def test_sequential_unharmed(self):
        trace = trace_for_permutation(np.arange(2048), 4)
        plain = Cache(SMALL)
        plain.run_trace(trace)
        fetched = run_prefetched_trace(trace, Cache(SMALL), depth=8)
        assert fetched.miss_rate <= plain.stats.miss_rate + 1e-9

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PermutationPrefetcher(Cache(SMALL), np.arange(4), depth=0)

    def test_exhausted_trace_raises(self):
        p = PermutationPrefetcher(Cache(SMALL), np.array([0]), depth=1)
        p.access_next()
        with pytest.raises(IndexError):
            p.access_next()

    def test_prefetch_does_not_count_accesses(self):
        c = Cache(SMALL)
        c.prefetch(0)
        assert c.stats.accesses == 0
        assert c.access(0)
        assert c.stats.prefetch_hits == 1

    def test_prefetch_existing_line_is_noop(self):
        c = Cache(SMALL)
        c.access(0)
        c.prefetch(0)
        assert c.access(0)
        assert c.stats.prefetch_hits == 0
