"""Tests for dynamic core reallocation (processor sharing, IV-C2)."""

import numpy as np
import pytest

from repro.apps.histeq import build_histeq_automaton, histeq_precise
from repro.apps.kmeans import build_kmeans_automaton, kmeans_precise
from repro.core.procsharing import ProcessorPool
from repro.data.images import clustered_image, scene_image


class TestProcessorPool:
    def test_single_stage_gets_all_cores(self):
        pool = ProcessorPool(8.0, {"a": 1.0, "b": 1.0})
        pool.start("a", 80.0, now=0.0)
        assert pool.next_completion() == (10.0, "a")

    def test_active_stages_share_by_weight(self):
        pool = ProcessorPool(8.0, {"a": 3.0, "b": 1.0})
        pool.start("a", 60.0, now=0.0)
        pool.start("b", 60.0, now=0.0)
        # a runs at 6 cores, b at 2: completions at 10 and 30
        assert pool.next_completion() == (10.0, "a")
        pool.complete("a", 10.0)
        # b inherits the whole machine: 40 units left at 8 cores
        eta, name = pool.next_completion()
        assert name == "b" and eta == pytest.approx(15.0)

    def test_lazy_advance_is_exact(self):
        pool = ProcessorPool(4.0, {"a": 1.0, "b": 1.0})
        pool.start("a", 40.0, now=0.0)
        pool.start("b", 10.0, now=0.0)   # both at 2 cores
        assert pool.next_completion() == (5.0, "b")
        pool.complete("b", 5.0)
        # a did 10 units by t=5, 30 left at 4 cores -> done at 12.5
        assert pool.next_completion() == (pytest.approx(12.5), "a")

    def test_completion_requires_zero_remaining(self):
        pool = ProcessorPool(4.0, {"a": 1.0})
        pool.start("a", 40.0, now=0.0)
        with pytest.raises(ValueError, match="work left"):
            pool.complete("a", 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorPool(0.0, {"a": 1.0})
        with pytest.raises(ValueError):
            ProcessorPool(4.0, {"a": 0.0})
        pool = ProcessorPool(4.0, {"a": 1.0})
        with pytest.raises(KeyError):
            pool.start("zz", 1.0, now=0.0)
        pool.start("a", 1.0, now=0.0)
        with pytest.raises(ValueError, match="already"):
            pool.start("a", 1.0, now=0.0)

    def test_time_cannot_go_backwards(self):
        pool = ProcessorPool(4.0, {"a": 1.0, "b": 1.0})
        pool.start("a", 10.0, now=5.0)
        with pytest.raises(ValueError, match="backwards"):
            pool.start("b", 10.0, now=1.0)

    def test_ties_break_by_name(self):
        pool = ProcessorPool(4.0, {"a": 1.0, "b": 1.0})
        pool.start("b", 20.0, now=0.0)
        pool.start("a", 20.0, now=0.0)
        assert pool.next_completion()[1] == "a"

    def test_empty_pool(self):
        assert ProcessorPool(4.0, {"a": 1.0}).next_completion() is None


class TestDynamicExecution:
    def test_output_unchanged(self, small_image):
        """Dynamic sharing is a performance knob, never a correctness
        one: the final output is bit-identical."""
        ref = histeq_precise(small_image)
        for dyn in (False, True):
            auto = build_histeq_automaton(small_image, chunks=8)
            res = auto.run_simulated(total_cores=16.0,
                                     dynamic_shares=dyn)
            final = res.timeline.final_record("equalized")
            assert np.array_equal(final.value, ref), dyn

    def test_dynamic_is_faster_for_pipelines(self, small_image):
        """Idle stages donate cores: histeq's apply stage inherits the
        machine once the histogram finishes."""
        times = {}
        for dyn in (False, True):
            auto = build_histeq_automaton(small_image, chunks=8)
            res = auto.run_simulated(total_cores=16.0,
                                     dynamic_shares=dyn)
            times[dyn] = res.timeline.final_record("equalized").time
        assert times[True] < 0.8 * times[False]

    def test_dynamic_kmeans(self, small_rgb):
        ref = kmeans_precise(small_rgb, k=4)
        auto = build_kmeans_automaton(small_rgb, k=4, chunks=8)
        res = auto.run_simulated(total_cores=16.0, dynamic_shares=True)
        final = res.timeline.final_record("clustered1")
        assert np.array_equal(final.value["image"], ref)

    def test_single_stage_unaffected_shape(self, small_image):
        """A single-stage automaton already holds all cores either way;
        dynamic sharing must not change its timeline."""
        from repro.apps.conv2d import build_conv2d_automaton

        timelines = []
        for dyn in (False, True):
            auto = build_conv2d_automaton(small_image, chunks=4)
            res = auto.run_simulated(total_cores=8.0,
                                     schedule={"conv": 8.0},
                                     dynamic_shares=dyn)
            timelines.append([(r.time, r.version)
                              for r in res.output_records("filtered")])
        assert timelines[0] == pytest.approx(timelines[1])

    def test_deterministic(self, small_image):
        runs = []
        for _ in range(2):
            auto = build_histeq_automaton(small_image, chunks=8)
            res = auto.run_simulated(total_cores=16.0,
                                     dynamic_shares=True)
            runs.append([(r.time, r.buffer, r.version)
                         for r in res.timeline.records])
        assert runs[0] == runs[1]
