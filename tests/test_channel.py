"""Tests for synchronous-pipeline update channels (paper III-C2)."""

import threading

import pytest

from repro.core.channel import ChannelClosed, UpdateChannel


class TestFifo:
    def test_order_preserved(self):
        ch = UpdateChannel("x")
        for i in range(5):
            ch.emit(i)
        assert [ch.recv(timeout=0.1) for _ in range(5)] == list(range(5))
        assert ch.emitted == 5 and ch.received == 5

    def test_len(self):
        ch = UpdateChannel("x")
        ch.emit(1)
        ch.emit(2)
        assert len(ch) == 2


class TestClose:
    def test_recv_drains_then_raises(self):
        """Every update must be deliverable after close — the paper's
        requirement that all g_S(X_i) are computed."""
        ch = UpdateChannel("x")
        ch.emit("a")
        ch.close()
        assert ch.recv(timeout=0.1) == "a"
        with pytest.raises(ChannelClosed):
            ch.recv(timeout=0.1)

    def test_emit_after_close_rejected(self):
        ch = UpdateChannel("x")
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.emit(1)

    def test_try_recv_after_close(self):
        ch = UpdateChannel("x")
        ch.emit(1)
        ch.close()
        assert ch.try_recv() == (True, 1)
        with pytest.raises(ChannelClosed):
            ch.try_recv()


class TestCapacity:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            UpdateChannel("x", capacity=0)

    def test_try_emit_full(self):
        ch = UpdateChannel("x", capacity=1)
        assert ch.try_emit(1)
        assert not ch.try_emit(2)
        assert ch.full

    def test_emit_blocks_until_consumer_pops(self):
        """Capacity 1 is the paper's synchronization: the producer may
        not overwrite X_i before g_S(X_i) starts."""
        ch = UpdateChannel("x", capacity=1)
        ch.emit("X1")
        done = []

        def producer():
            ch.emit("X2", timeout=5.0)
            done.append(True)

        t = threading.Thread(target=producer)
        t.start()
        assert ch.recv(timeout=1.0) == "X1"
        t.join(timeout=5.0)
        assert done
        assert ch.recv(timeout=1.0) == "X2"

    def test_emit_timeout_on_stuck_consumer(self):
        ch = UpdateChannel("x", capacity=1)
        ch.emit(1)
        with pytest.raises(TimeoutError):
            ch.emit(2, timeout=0.02)

    def test_unbounded_never_full(self):
        ch = UpdateChannel("x")
        for i in range(1000):
            ch.try_emit(i)
        assert not ch.full


class TestBlockingRecv:
    def test_recv_timeout(self):
        with pytest.raises(TimeoutError):
            UpdateChannel("x").recv(timeout=0.02)

    def test_try_recv_empty(self):
        assert UpdateChannel("x").try_recv() == (False, None)

    def test_recv_wakes_on_emit(self):
        ch = UpdateChannel("x")
        got = []

        def consumer():
            got.append(ch.recv(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        ch.emit("late")
        t.join(timeout=5.0)
        assert got == ["late"]

    def test_recv_wakes_on_close(self):
        ch = UpdateChannel("x")
        got = []

        def consumer():
            try:
                ch.recv(timeout=5.0)
            except ChannelClosed:
                got.append("closed")

        t = threading.Thread(target=consumer)
        t.start()
        ch.close()
        t.join(timeout=5.0)
        assert got == ["closed"]
