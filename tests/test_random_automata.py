"""Property-based tests over randomly generated automata.

Hypothesis builds random DAGs of precise/iterative/diffusive stages with
random costs, shapes and core allocations, and we assert the model's
universal guarantees on every one:

- the execution completes (no deadlock) and is deterministic;
- the terminal buffer's final version equals the precise evaluation of
  the graph, bit for bit;
- exactly the last terminal version is marked final;
- versions appear in non-decreasing time order, and every stage's
  version count is at least one.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anytime.permutations import TreePermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.core.mapstage import MapStage
from repro.core.stage import PreciseStage

VEC = 16   # every buffer carries an int64 vector of this length


def _unary_op(kind: int):
    return [lambda v: v + 3,
            lambda v: v * 2,
            lambda v: np.maximum(v - 5, 0),
            lambda v: v // 2][kind % 4]


def _coarse(v: np.ndarray) -> np.ndarray:
    return (np.asarray(v, np.int64) >> 3) << 3


@st.composite
def automata(draw) -> AnytimeAutomaton:
    """A random linear-ish DAG: each stage consumes 1-2 earlier buffers."""
    n_stages = draw(st.integers(min_value=1, max_value=6))
    b_in = VersionedBuffer("in")
    buffers = [b_in]
    stages = []
    for i in range(n_stages):
        kind = draw(st.integers(min_value=0, max_value=2))
        op = _unary_op(draw(st.integers(min_value=0, max_value=3)))
        cost = float(draw(st.integers(min_value=1, max_value=50)))
        out = VersionedBuffer(f"b{i}")
        n_inputs = draw(st.integers(
            min_value=1, max_value=min(2, len(buffers))))
        picks = draw(st.permutations(range(len(buffers))))[:n_inputs]
        inputs = tuple(buffers[p] for p in picks)

        if kind == 0 or n_inputs == 2:
            def fn(*vals, op=op):
                acc = vals[0]
                for v in vals[1:]:
                    acc = acc + v
                return op(acc)

            stages.append(PreciseStage(f"s{i}", out, inputs, fn,
                                       cost=cost))
        elif kind == 1:
            levels = [
                AccuracyLevel(lambda v, op=op: _coarse(op(v)),
                              cost=cost),
                AccuracyLevel(lambda v, op=op: op(v), cost=cost * 2),
            ]
            stages.append(IterativeStage(f"s{i}", out, inputs, levels))
        else:
            def elem(idx, v, op=op):
                return op(np.asarray(v, np.int64))[idx]

            stages.append(MapStage(
                f"s{i}", out, inputs, elem, shape=VEC,
                dtype=np.int64, permutation=TreePermutation(),
                chunks=draw(st.integers(min_value=1, max_value=4)),
                cost_per_element=cost / VEC))
        buffers.append(out)
    # guarantee a single terminal: chain any dangling buffers into a sum
    consumed = {b.name for s in stages for b in s.inputs}
    dangling = [b for b in buffers[:-1]
                if b.name not in consumed and b.name != "in"]
    if dangling:
        out = VersionedBuffer("sink")
        stages.append(PreciseStage(
            "sink", out, tuple(dangling) + (buffers[-1],),
            lambda *vs: sum(vs[1:], vs[0]), cost=1.0))
    data = np.asarray(
        draw(st.lists(st.integers(min_value=0, max_value=1000),
                      min_size=VEC, max_size=VEC)), dtype=np.int64)
    return AnytimeAutomaton(stages, name="random",
                            external={"in": data})


class TestRandomAutomata:
    @given(automata(), st.floats(min_value=1.0, max_value=32.0))
    @settings(max_examples=60, deadline=None)
    def test_final_output_equals_precise_evaluation(self, automaton,
                                                    cores):
        terminal = automaton.terminal_buffer_name
        reference = automaton.precise_output()
        result = automaton.run_simulated(total_cores=cores)
        assert result.completed
        records = result.output_records(terminal)
        assert records, "terminal stage must publish at least once"
        final = records[-1]
        assert final.final
        assert not any(r.final for r in records[:-1])
        assert np.array_equal(final.value, reference)
        times = [r.time for r in records]
        assert times == sorted(times)

    @given(automata())
    @settings(max_examples=20, deadline=None)
    def test_every_stage_publishes(self, automaton):
        result = automaton.run_simulated(total_cores=4.0)
        for stage in automaton.graph.stages:
            assert result.timeline.for_buffer(stage.output.name), \
                stage.name

    @given(automata())
    @settings(max_examples=15, deadline=None)
    def test_global_write_order_is_time_ordered(self, automaton):
        """The kernel's event ordering: across *all* buffers, records
        appear in non-decreasing virtual time, and per-buffer versions
        are strictly increasing."""
        result = automaton.run_simulated(total_cores=4.0)
        times = [r.time for r in result.timeline.records]
        assert times == sorted(times)
        per_buffer: dict[str, int] = {}
        for r in result.timeline.records:
            assert r.version == per_buffer.get(r.buffer, 0) + 1
            per_buffer[r.buffer] = r.version

    @given(automata())
    @settings(max_examples=20, deadline=None)
    def test_threaded_executor_agrees_on_final_value(self, automaton):
        reference = automaton.precise_output()
        result = automaton.run_threaded(timeout_s=60.0)
        final = result.timeline.final_record(
            automaton.terminal_buffer_name)
        assert final is not None
        assert np.array_equal(final.value, reference)
