"""Tests for the PGM/PPM image IO helpers."""

import numpy as np
import pytest

from repro.data.pnm import read_pnm, write_pnm


class TestRoundtrip:
    def test_grayscale(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(13, 7)).astype(np.uint8)
        path = tmp_path / "x.pgm"
        write_pnm(path, img)
        assert np.array_equal(read_pnm(path), img)

    def test_rgb(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(5, 9, 3)).astype(np.uint8)
        path = tmp_path / "x.ppm"
        write_pnm(path, img)
        assert np.array_equal(read_pnm(path), img)

    def test_magic_bytes(self, tmp_path):
        gray = np.zeros((2, 2), dtype=np.uint8)
        rgb = np.zeros((2, 2, 3), dtype=np.uint8)
        write_pnm(tmp_path / "g.pgm", gray)
        write_pnm(tmp_path / "c.ppm", rgb)
        assert (tmp_path / "g.pgm").read_bytes()[:2] == b"P5"
        assert (tmp_path / "c.ppm").read_bytes()[:2] == b"P6"


class TestValidation:
    def test_rejects_non_uint8(self, tmp_path):
        with pytest.raises(TypeError):
            write_pnm(tmp_path / "x.pgm", np.zeros((2, 2)))

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_pnm(tmp_path / "x.pgm",
                      np.zeros((2, 2, 4), dtype=np.uint8))

    def test_read_rejects_unknown_magic(self, tmp_path):
        path = tmp_path / "bad.pnm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError, match="magic"):
            read_pnm(path)

    def test_read_handles_comments(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 1\n255\n\x07\x09")
        assert read_pnm(path).tolist() == [[7, 9]]
