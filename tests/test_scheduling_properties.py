"""Tests for scheduling policies and the Property 1-3 validators."""

import numpy as np
import pytest

from repro.bench.experiments import build_fig2_automaton
from repro.core.buffer import VersionedBuffer
from repro.core.graph import AutomatonGraph
from repro.core.properties import (PurityViolation, check_atomicity,
                                   check_purity, check_single_writer)
from repro.core.scheduling import (POLICIES, equal_shares,
                                   final_stage_shares,
                                   first_output_shares,
                                   proportional_shares)
from repro.core.stage import PreciseStage


@pytest.fixture
def graph():
    return build_fig2_automaton(cost=100.0).graph


class TestPolicies:
    @pytest.mark.parametrize("policy", list(POLICIES.values()),
                             ids=list(POLICIES))
    def test_shares_sum_to_total(self, graph, policy):
        shares = policy(graph, 16.0)
        assert sum(shares.values()) == pytest.approx(16.0)
        assert set(shares) == {s.name for s in graph.stages}
        assert all(v > 0 for v in shares.values())

    def test_equal_shares(self, graph):
        shares = equal_shares(graph, 8.0)
        assert all(v == pytest.approx(2.0) for v in shares.values())

    def test_proportional_tracks_cost(self, graph):
        shares = proportional_shares(graph, 16.0)
        assert shares["f"] > shares["g"]          # f costs 2x

    def test_one_core_floor(self):
        """Cheap stages keep at least one core (a real machine cannot
        allocate a fraction of a hardware thread to a stage forever)."""
        b_in = VersionedBuffer("in")
        b_a = VersionedBuffer("A")
        b_b = VersionedBuffer("B")
        big = PreciseStage("big", b_a, (b_in,), lambda x: x,
                           cost=1_000_000.0)
        tiny = PreciseStage("tiny", b_b, (b_a,), lambda x: x, cost=1.0)
        graph = AutomatonGraph([big, tiny])
        shares = proportional_shares(graph, 32.0)
        assert shares["tiny"] >= 1.0
        assert sum(shares.values()) == pytest.approx(32.0)

    def test_floor_with_fewer_cores_than_stages(self, graph):
        shares = proportional_shares(graph, 2.0)
        assert sum(shares.values()) == pytest.approx(2.0)
        assert all(v > 0 for v in shares.values())

    def test_first_output_boosts_longest(self, graph):
        plain = proportional_shares(graph, 16.0)
        boosted = first_output_shares(graph, 16.0)
        assert boosted["f"] > plain["f"]

    def test_final_stage_boosts_terminal(self, graph):
        plain = proportional_shares(graph, 16.0)
        boosted = final_stage_shares(graph, 16.0)
        assert boosted["i"] > plain["i"]


class TestPurityChecker:
    def test_accepts_pure_function(self):
        out = check_purity(lambda a: a * 2, [np.arange(4)])
        assert np.array_equal(out, np.arange(4) * 2)

    def test_catches_argument_mutation(self):
        def impure(a):
            a[0] = 99
            return a.sum()

        with pytest.raises(PurityViolation, match="mutated"):
            check_purity(impure, [np.arange(4)])

    def test_catches_nondeterminism(self):
        state = {"n": 0}

        def stateful(a):
            state["n"] += 1
            return state["n"]

        with pytest.raises(PurityViolation, match="non-deterministic"):
            check_purity(stateful, [np.arange(2)])

    def test_nested_containers_copied(self):
        def impure(d):
            d["k"].append(1)
            return 0

        with pytest.raises(PurityViolation):
            check_purity(impure, [{"k": []}])

    def test_requires_two_trials(self):
        with pytest.raises(ValueError):
            check_purity(lambda: 0, [], trials=1)


class TestSingleWriterChecker:
    def test_valid_graph_passes(self):
        auto = build_fig2_automaton()
        check_single_writer(auto.graph)


class TestAtomicityChecker:
    def test_frozen_array_passes(self):
        a = np.arange(3)
        a.setflags(write=False)
        check_atomicity(a)

    def test_writable_array_fails(self):
        with pytest.raises(AssertionError, match="Property 3"):
            check_atomicity(np.arange(3))

    def test_buffer_snapshots_satisfy_atomicity(self):
        b = VersionedBuffer("b")
        b.write(np.arange(5))
        check_atomicity(b.snapshot().value)
