"""Tests for the commutative operator registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.anytime.operators import (REGISTRY, Operator, get_operator,
                                     register_operator)

ARRAY_OPS = ["add", "min", "max", "bitor", "bitand"]


def _arrays(dtype=np.int64):
    return hnp.arrays(dtype=dtype, shape=st.integers(1, 20),
                      elements=st.integers(-1000, 1000))


class TestRegistry:
    def test_known_operators_present(self):
        for name in ARRAY_OPS + ["union"]:
            assert name in REGISTRY

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known"):
            get_operator("frobnicate")

    def test_reregistration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_operator(REGISTRY["add"])


class TestAlgebraicLaws:
    @pytest.mark.parametrize("name", ARRAY_OPS)
    @given(a=_arrays(), b=_arrays())
    @settings(max_examples=25, deadline=None)
    def test_commutativity(self, name, a, b):
        if a.shape != b.shape:
            b = np.resize(b, a.shape)
        op = get_operator(name)
        assert np.array_equal(op.combine(a, b), op.combine(b, a))

    @pytest.mark.parametrize("name", ["min", "max", "bitor", "bitand"])
    @given(a=_arrays())
    @settings(max_examples=25, deadline=None)
    def test_idempotent_operators_satisfy_law(self, name, a):
        op = get_operator(name)
        assert op.idempotent
        assert np.array_equal(op.combine(a, a), a)

    def test_add_is_not_idempotent(self):
        assert not get_operator("add").idempotent

    @pytest.mark.parametrize("name", ARRAY_OPS)
    @given(a=_arrays())
    @settings(max_examples=25, deadline=None)
    def test_identity_element(self, name, a):
        op = get_operator(name)
        ident = op.identity(a.shape, a.dtype)
        assert np.array_equal(op.combine(ident, a), a)


class TestWeighting:
    """Paper III-B2: non-idempotent reductions publish O'_i = O_i * n/i."""

    def test_add_weights_partial_sums(self):
        op = get_operator("add")
        partial = np.array([10.0, 20.0])
        assert np.allclose(op.weighted(partial, 5, 10),
                           [20.0, 40.0])

    def test_full_sample_weight_is_identity(self):
        op = get_operator("add")
        partial = np.array([3.0, 4.0])
        assert np.array_equal(op.weighted(partial, 8, 8), partial)

    def test_idempotent_weight_is_identity(self):
        op = get_operator("min")
        partial = np.array([3, 4])
        assert np.array_equal(op.weighted(partial, 1, 100), partial)

    def test_zero_sample_guard(self):
        op = get_operator("add")
        assert np.array_equal(op.weighted(np.zeros(2), 0, 10),
                              np.zeros(2))

    @given(values=_arrays(np.float64).map(np.abs),
           cut=st.integers(min_value=1, max_value=19))
    @settings(max_examples=30, deadline=None)
    def test_weighted_estimate_is_unbiased_under_random_order(
            self, values, cut):
        """The weighted partial sum of a prefix estimates the total; at
        the full sample it is exact."""
        op = get_operator("add")
        n = len(values)
        cut = min(cut, n)
        partial = values[:cut].sum()
        weighted = op.weighted(partial, cut, n)
        assert np.isclose(op.weighted(values.sum(), n, n),
                          values.sum())
        # weighted estimate has the right scale (no n/i missing factor)
        if partial > 0:
            assert weighted >= partial


class TestUnionOperator:
    def test_accumulates_sets(self):
        op = get_operator("union")
        acc = op.identity((), np.dtype(object))
        acc = op.combine(acc, {1, 2})
        acc = op.combine(acc, {2, 3})
        assert acc == {1, 2, 3}


class TestIdentityFactories:
    def test_bitand_identity_requires_integers(self):
        op = get_operator("bitand")
        with pytest.raises(TypeError):
            op.identity((3,), np.float64)

    def test_min_identity_float_is_inf(self):
        ident = get_operator("min").identity((2,), np.float64)
        assert np.all(np.isinf(ident)) and np.all(ident > 0)

    def test_max_identity_int_is_iinfo_min(self):
        ident = get_operator("max").identity((2,), np.int32)
        assert (ident == np.iinfo(np.int32).min).all()
