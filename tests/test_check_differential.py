"""Differential conformance harness tests (repro.check.differential)."""

import json

import pytest

from repro.check import run_differential
from repro.check import differential as diff_mod

pytestmark = pytest.mark.check


class TestCrossExecutor:
    @pytest.mark.timeout(120)
    def test_two_executor_pass_is_clean(self):
        report = run_differential(app="dwt53", size=16, serve=False,
                                  executors=("simulated", "threaded"))
        assert report.ok, report.mismatches
        assert [o.executor for o in report.observations] == \
            ["simulated", "threaded"]
        for obs in report.observations:
            assert obs.completed
            assert obs.final_matches_precise
            assert obs.check.ok

    @pytest.mark.slow
    @pytest.mark.timeout(300)
    def test_three_executor_pass_is_clean(self):
        pytest.importorskip("multiprocessing.shared_memory")
        report = run_differential(app="2dconv", size=24, serve=False)
        assert report.ok, report.mismatches
        assert len(report.observations) == 3

    @pytest.mark.timeout(120)
    def test_report_is_json_serializable(self):
        report = run_differential(app="dwt53", size=16, serve=False,
                                  executors=("simulated",))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["report"] == "differential-conformance"
        assert payload["ok"] is True
        assert payload["observations"][0]["version_counts"]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_differential(app="dwt53", size=16, serve=False,
                             executors=("gpu",))


class TestLeaseEquivalence:
    """The lease safety rule, enforced by the harness: batching under a
    command lease may only elide round-trips, never change what gets
    published."""

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("lease_k", [1, 8])
    def test_differential_clean_at_any_lease(self, lease_k):
        report = run_differential(app="2dconv", size=16, serve=False,
                                  executors=("simulated", "threaded"),
                                  lease_k=lease_k)
        assert report.ok, report.mismatches
        for obs in report.observations:
            assert obs.completed and obs.final_matches_precise

    @pytest.mark.slow
    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("app", ["2dconv", "dwt53"])
    @pytest.mark.parametrize("executor",
                             ["simulated", "threaded", "process"])
    def test_version_ladder_bit_identical_across_lease_sizes(
            self, executor, app):
        """Every published version — not just the final — must be bit
        for bit the same whether the executor grants leases of 1 or 8
        levels.  Covers both batching families: diffusive chunk fusion
        (2dconv) and iterative level fusion (dwt53)."""
        import numpy as np

        from repro.apps.registry import get_app

        spec = get_app(app)
        image = spec.make_input(16, 0)
        ladders = {}
        for lease_k in (1, 8):
            automaton = spec.build(image)
            if executor == "simulated":
                result = automaton.run_simulated(lease_k=lease_k)
            elif executor == "threaded":
                result = automaton.run_threaded(timeout_s=120.0,
                                                lease_k=lease_k)
            else:
                result = automaton.run_processes(timeout_s=120.0,
                                                 lease_k=lease_k)
            assert result.completed
            ladders[lease_k] = result.output_records(
                automaton.terminal_buffer_name)
        sync, leased = ladders[1], ladders[8]
        assert [r.version for r in sync] == \
            [r.version for r in leased]
        for s, l in zip(sync, leased):
            assert s.final == l.final
            assert np.array_equal(s.value, l.value), \
                f"version {s.version} diverged under a lease"


class TestMismatchDetection:
    @pytest.mark.timeout(120)
    def test_forged_final_is_reported(self, monkeypatch):
        # force the bit-exact comparison to fail: the harness must
        # report a final-mismatch for every executor, not pass silently
        monkeypatch.setattr(diff_mod, "_values_equal",
                            lambda a, b: False)
        report = run_differential(app="dwt53", size=16, serve=False,
                                  executors=("simulated",))
        assert not report.ok
        assert any(m["kind"] == "final-mismatch"
                   for m in report.mismatches)


@pytest.mark.serve
@pytest.mark.slow
class TestServeLeg:
    @pytest.mark.timeout(180)
    def test_preempt_resume_stays_conformant(self):
        report = run_differential(app="2dconv", size=24, serve=True,
                                  executors=("simulated",))
        assert report.serve is not None
        assert report.serve["ok"], report.serve["problems"]
        assert report.serve["preemptions"] >= 1
        assert all(state == "completed"
                   for state in report.serve["states"].values())
