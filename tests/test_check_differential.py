"""Differential conformance harness tests (repro.check.differential)."""

import json

import pytest

from repro.check import run_differential
from repro.check import differential as diff_mod

pytestmark = pytest.mark.check


class TestCrossExecutor:
    @pytest.mark.timeout(120)
    def test_two_executor_pass_is_clean(self):
        report = run_differential(app="dwt53", size=16, serve=False,
                                  executors=("simulated", "threaded"))
        assert report.ok, report.mismatches
        assert [o.executor for o in report.observations] == \
            ["simulated", "threaded"]
        for obs in report.observations:
            assert obs.completed
            assert obs.final_matches_precise
            assert obs.check.ok

    @pytest.mark.slow
    @pytest.mark.timeout(300)
    def test_three_executor_pass_is_clean(self):
        pytest.importorskip("multiprocessing.shared_memory")
        report = run_differential(app="2dconv", size=24, serve=False)
        assert report.ok, report.mismatches
        assert len(report.observations) == 3

    @pytest.mark.timeout(120)
    def test_report_is_json_serializable(self):
        report = run_differential(app="dwt53", size=16, serve=False,
                                  executors=("simulated",))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["report"] == "differential-conformance"
        assert payload["ok"] is True
        assert payload["observations"][0]["version_counts"]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_differential(app="dwt53", size=16, serve=False,
                             executors=("gpu",))


class TestMismatchDetection:
    @pytest.mark.timeout(120)
    def test_forged_final_is_reported(self, monkeypatch):
        # force the bit-exact comparison to fail: the harness must
        # report a final-mismatch for every executor, not pass silently
        monkeypatch.setattr(diff_mod, "_values_equal",
                            lambda a, b: False)
        report = run_differential(app="dwt53", size=16, serve=False,
                                  executors=("simulated",))
        assert not report.ok
        assert any(m["kind"] == "final-mismatch"
                   for m in report.mismatches)


@pytest.mark.serve
@pytest.mark.slow
class TestServeLeg:
    @pytest.mark.timeout(180)
    def test_preempt_resume_stays_conformant(self):
        report = run_differential(app="2dconv", size=24, serve=True,
                                  executors=("simulated",))
        assert report.serve is not None
        assert report.serve["ok"], report.serve["problems"]
        assert report.serve["preemptions"] >= 1
        assert all(state == "completed"
                   for state in report.serve["states"].values())
