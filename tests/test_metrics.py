"""Tests for SNR metrics and runtime-accuracy profiles."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.profiles import ProfilePoint, RuntimeAccuracyProfile
from repro.metrics.snr import mse, nrmse, psnr_db, rmse, snr_db


class TestSnr:
    def test_exact_match_is_inf(self):
        a = np.arange(10.0)
        assert snr_db(a, a) == math.inf

    def test_known_value(self):
        ref = np.array([10.0, 0.0])
        approx = np.array([9.0, 0.0])
        assert snr_db(approx, ref) == pytest.approx(20.0)

    def test_zero_reference_with_error(self):
        assert snr_db(np.ones(3), np.zeros(3)) == -math.inf

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            snr_db(np.zeros(3), np.zeros(4))

    def test_uint8_inputs_no_overflow(self):
        """Differences of uint8 arrays must not wrap around."""
        ref = np.array([0], dtype=np.uint8)
        approx = np.array([255], dtype=np.uint8)
        assert mse(approx, ref) == pytest.approx(255.0 ** 2)

    @given(st.integers(0, 2 ** 32))
    @settings(max_examples=20, deadline=None)
    def test_snr_decreases_with_noise(self, seed):
        rng = np.random.default_rng(seed)
        ref = rng.uniform(1, 10, 64)
        small = ref + rng.normal(0, 0.01, 64)
        large = ref + rng.normal(0, 1.0, 64)
        assert snr_db(small, ref) > snr_db(large, ref)

    def test_mse_rmse_relation(self):
        a, b = np.array([1.0, 3.0]), np.array([2.0, 5.0])
        assert rmse(a, b) == pytest.approx(math.sqrt(mse(a, b)))

    def test_nrmse_normalized(self):
        ref = np.array([0.0, 100.0])
        approx = np.array([10.0, 100.0])
        assert nrmse(approx, ref) == pytest.approx(
            math.sqrt(50.0) / 100.0)

    def test_nrmse_flat_reference(self):
        flat = np.full(4, 7.0)
        assert nrmse(flat, flat) == 0.0
        assert nrmse(flat + 1, flat) == math.inf

    def test_psnr_exact_inf(self):
        a = np.arange(4.0)
        assert psnr_db(a, a) == math.inf

    def test_psnr_with_peak(self):
        ref = np.array([0.0, 0.0])
        approx = np.array([25.5, 0.0])
        # mse = 325.125... use explicit: peak^2 / mse
        expected = 10 * math.log10(255 ** 2 / mse(approx, ref))
        assert psnr_db(approx, ref, peak=255) == pytest.approx(expected)


class TestProfilePoint:
    def test_rejects_negative_runtime(self):
        with pytest.raises(ValueError):
            ProfilePoint(-0.1, 10.0)


class TestRuntimeAccuracyProfile:
    def make(self):
        p = RuntimeAccuracyProfile(label="t")
        p.add(0.2, 10.0, version=1, energy=5.0)
        p.add(0.5, 18.0, version=2, energy=12.0)
        p.add(1.1, math.inf, version=3, energy=30.0)
        return p

    def test_time_ordering_enforced(self):
        p = self.make()
        with pytest.raises(ValueError, match="time-ordered"):
            p.add(0.3, 20.0)

    def test_final_snr(self):
        assert self.make().final_snr_db == math.inf

    def test_final_snr_empty_raises(self):
        with pytest.raises(ValueError):
            RuntimeAccuracyProfile().final_snr_db

    def test_time_to_precise(self):
        assert self.make().time_to_precise == pytest.approx(1.1)

    def test_time_to_precise_none_when_not_reached(self):
        p = RuntimeAccuracyProfile()
        p.add(0.5, 20.0)
        assert p.time_to_precise is None

    def test_snr_at(self):
        p = self.make()
        assert p.snr_at(0.1) == -math.inf
        assert p.snr_at(0.2) == 10.0
        assert p.snr_at(0.7) == 18.0
        assert p.snr_at(5.0) == math.inf

    def test_time_to_snr(self):
        p = self.make()
        assert p.time_to_snr(15.0) == pytest.approx(0.5)
        assert p.time_to_snr(10.0) == pytest.approx(0.2)
        assert RuntimeAccuracyProfile().time_to_snr(1.0) is None

    def test_energy_to_snr(self):
        assert self.make().energy_to_snr(15.0) == pytest.approx(12.0)

    def test_monotonic_check(self):
        p = self.make()
        assert p.is_monotonic()
        q = RuntimeAccuracyProfile()
        q.add(0.1, 20.0)
        q.add(0.2, 15.0)
        assert not q.is_monotonic()
        assert q.is_monotonic(tolerance_db=6.0)
        assert len(q.monotonicity_violations()) == 1

    def test_iteration_and_len(self):
        p = self.make()
        assert len(p) == 3
        assert [pt.version for pt in p] == [1, 2, 3]

    def test_to_rows(self):
        assert self.make().to_rows()[0] == (0.2, 10.0)

    def test_format_table_thinning(self):
        p = RuntimeAccuracyProfile(label="x")
        for i in range(50):
            p.add(i * 0.1, float(i))
        text = p.format_table(max_rows=5)
        assert len(text.splitlines()) <= 7   # header + 5 rows
        assert "# x" in text

    def test_format_table_inf(self):
        assert "inf" in self.make().format_table()
