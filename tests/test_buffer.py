"""Tests for versioned buffers (paper Properties 2 and 3)."""

import threading

import numpy as np
import pytest

from repro.core.buffer import Snapshot, VersionedBuffer


class TestVersioning:
    def test_initial_state_is_empty(self):
        b = VersionedBuffer("b")
        snap = b.snapshot()
        assert snap.empty and snap.version == 0 and snap.value is None
        assert not snap.final

    def test_writes_increment_versions(self):
        b = VersionedBuffer("b")
        assert b.write(1) == 1
        assert b.write(2) == 2
        assert b.snapshot().value == 2

    def test_final_freezes_buffer(self):
        """The precise output must never regress."""
        b = VersionedBuffer("b")
        b.write(1, final=True)
        with pytest.raises(ValueError, match="final"):
            b.write(2)

    def test_snapshot_is_atomic_triple(self):
        b = VersionedBuffer("b")
        b.write("x", final=True)
        snap = b.snapshot()
        assert (snap.value, snap.version, snap.final) == ("x", 1, True)
        assert snap.name == "b"


class TestPropertyTwo:
    def test_register_writer_claims_buffer(self):
        b = VersionedBuffer("b")
        b.register_writer("f")
        with pytest.raises(ValueError, match="Property 2"):
            b.register_writer("g")

    def test_same_writer_may_reregister(self):
        b = VersionedBuffer("b")
        b.register_writer("f")
        b.register_writer("f")
        assert b.writer == "f"

    def test_write_with_wrong_writer_token_rejected(self):
        b = VersionedBuffer("b")
        b.register_writer("f")
        with pytest.raises(ValueError, match="Property 2"):
            b.write(1, writer="g")
        b.write(1, writer="f")


class TestPropertyThree:
    def test_array_snapshots_are_frozen(self):
        """A consumer must not be able to corrupt a published version."""
        b = VersionedBuffer("b")
        b.write(np.arange(4))
        snap = b.snapshot()
        with pytest.raises(ValueError):
            snap.value[0] = 99

    def test_writer_mutation_after_write_is_invisible(self):
        """write() copies: later mutation of the source array does not
        leak into the published version."""
        b = VersionedBuffer("b")
        src = np.arange(4)
        b.write(src)
        src[0] = 99
        assert b.snapshot().value[0] == 0

    def test_concurrent_writers_and_readers_see_whole_versions(self):
        """Hammer the buffer from a writer thread while readers snapshot;
        every observed array must be internally consistent (all elements
        equal — each version is a constant array)."""
        b = VersionedBuffer("b")
        b.write(np.zeros(64, dtype=np.int64))
        stop = threading.Event()
        torn = []

        def writer():
            v = 0
            while not stop.is_set():
                v += 1
                b.write(np.full(64, v, dtype=np.int64))

        def reader():
            for _ in range(500):
                value = b.snapshot().value
                if not (value == value[0]).all():
                    torn.append(value.copy())

        wt = threading.Thread(target=writer, daemon=True)
        rt = threading.Thread(target=reader, daemon=True)
        wt.start()
        rt.start()
        rt.join()
        stop.set()
        wt.join()
        assert not torn, "readers observed a torn write (Property 3)"


class TestWaitNewer:
    def test_returns_immediately_when_newer_exists(self):
        b = VersionedBuffer("b")
        b.write(1)
        snap = b.wait_newer(0, timeout=0.01)
        assert snap.version == 1

    def test_wakes_on_write(self):
        b = VersionedBuffer("b")
        got = []

        def waiter():
            got.append(b.wait_newer(0, timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        b.write("hello")
        t.join(timeout=5.0)
        assert got and got[0].value == "hello"

    def test_timeout_returns_stale_snapshot(self):
        b = VersionedBuffer("b")
        snap = b.wait_newer(0, timeout=0.01)
        assert snap.empty

    def test_final_buffer_returns_without_wait(self):
        b = VersionedBuffer("b")
        b.write(1, final=True)
        snap = b.wait_newer(5, timeout=0.01)
        assert snap.final

    def test_unsatisfying_notifies_do_not_end_wait_early(self):
        """Writes that don't satisfy the version predicate notify the
        condition; the wait must re-arm instead of returning stale."""
        import time

        b = VersionedBuffer("b")
        b.write("v1")

        def chatter():
            for _ in range(10):
                time.sleep(0.01)
                b.write("noise")

        t = threading.Thread(target=chatter, daemon=True)
        timeout = 0.3
        t0 = time.monotonic()
        t.start()
        snap = b.wait_newer(100, timeout=timeout)
        elapsed = time.monotonic() - t0
        t.join()
        # each of the 10 notifies satisfied nothing; the wait must hold
        # for the whole timeout, not return on the first wakeup
        assert elapsed >= timeout * 0.9
        assert snap.version == 11 and not snap.final

    def test_timeout_spans_multiple_wakeups(self):
        """The total timeout is honored across wakeups (the old
        single-wait version would restart the clock or return early)."""
        import time

        b = VersionedBuffer("b")
        b.write(0)
        stop = threading.Event()

        def chatter():
            while not stop.is_set():
                b.write("noise")
                time.sleep(0.005)

        t = threading.Thread(target=chatter, daemon=True)
        t.start()
        t0 = time.monotonic()
        b.wait_newer(10 ** 9, timeout=0.2)
        elapsed = time.monotonic() - t0
        stop.set()
        t.join()
        assert 0.15 <= elapsed < 2.0

    def test_sealed_buffer_returns_without_wait(self):
        b = VersionedBuffer("b")
        b.write(1)
        b.seal()
        import time
        t0 = time.monotonic()
        snap = b.wait_newer(5, timeout=5.0)
        assert time.monotonic() - t0 < 1.0
        assert snap.sealed and not snap.final and snap.exhausted


class TestSealing:
    def test_seal_freezes_writes(self):
        b = VersionedBuffer("b")
        b.write(1)
        b.seal()
        with pytest.raises(ValueError, match="sealed"):
            b.write(2)

    def test_seal_is_idempotent(self):
        b = VersionedBuffer("b")
        b.seal()
        b.seal()
        assert b.sealed

    def test_subscribe_event_set_on_write_and_seal(self):
        b = VersionedBuffer("b")
        e = threading.Event()
        b.subscribe(e)
        b.write(1)
        assert e.is_set()
        e.clear()
        b.seal()
        assert e.is_set()
        b.unsubscribe(e)
        e.clear()
        # no further notifications after unsubscribe
        b2_event_untouched = not e.is_set()
        assert b2_event_untouched


class TestSnapshotValueSemantics:
    def test_non_array_values_pass_through(self):
        b = VersionedBuffer("b")
        b.write({"k": 1})
        assert b.snapshot().value == {"k": 1}


class TestOwnershipTransfer:
    """``transfer=True`` writes skip the defensive copy (O(1) per
    version instead of O(elements))."""

    def test_default_write_copies_defensively(self):
        b = VersionedBuffer("b")
        a = np.arange(6.0)
        b.write(a)
        snap = b.snapshot()
        assert snap.value is not a
        a[0] = 99.0                    # writer keeps mutating
        assert snap.value[0] == 0.0    # snapshot is unaffected

    def test_transfer_write_freezes_in_place(self):
        b = VersionedBuffer("b")
        a = np.arange(6.0)
        b.write(a, transfer=True)
        snap = b.snapshot()
        assert snap.value is a         # the very same array: no copy
        assert not a.flags.writeable   # ... frozen in the caller's hands

    def test_already_frozen_array_stored_as_is(self):
        b = VersionedBuffer("b")
        a = np.arange(6.0)
        a.setflags(write=False)
        b.write(a)
        assert b.snapshot().value is a

    def test_transfer_is_constant_space(self):
        """Regression: a transfer write must not allocate a copy of the
        payload (numpy allocations are tracemalloc-visible)."""
        import tracemalloc

        b = VersionedBuffer("b")
        payload = np.zeros(1 << 18)    # 2 MiB
        tracemalloc.start()
        try:
            b.write(payload, transfer=True)
            _, transfer_peak = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            b2 = VersionedBuffer("b2")
            b2.write(np.zeros(1 << 18))
            _, copy_peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert transfer_peak < payload.nbytes // 2
        assert copy_peak >= payload.nbytes
