"""Tests for online quality estimators (reference-free stopping)."""

import math

import numpy as np
import pytest

from repro.anytime.permutations import TreePermutation
from repro.apps.conv2d import (build_conv2d_automaton, conv2d_elements,
                               blur_kernel, conv2d_precise)
from repro.metrics.estimators import (ConvergenceEstimator,
                                      ConvergenceStop,
                                      SampleAgreementEstimator)
from repro.metrics.snr import snr_db


class TestConvergenceEstimator:
    def test_first_update_is_inf(self):
        est = ConvergenceEstimator()
        assert est.update(np.zeros(4)) == math.inf

    def test_identical_versions_converge(self):
        est = ConvergenceEstimator(threshold=0.01, patience=2)
        v = np.arange(10.0)
        est.update(v)
        est.update(v)
        assert not est.converged          # streak = 1
        est.update(v)
        assert est.converged

    def test_changing_versions_reset_streak(self):
        est = ConvergenceEstimator(threshold=0.01, patience=2)
        est.update(np.zeros(4) + 1.0)
        est.update(np.zeros(4) + 1.0)
        est.update(np.zeros(4) + 50.0)    # big jump
        assert not est.converged

    def test_relative_delta_value(self):
        est = ConvergenceEstimator()
        est.update(np.full(4, 10.0))
        delta = est.update(np.full(4, 11.0))
        assert delta == pytest.approx(1.0 / 11.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ConvergenceEstimator(threshold=0.0)
        with pytest.raises(ValueError):
            ConvergenceEstimator(patience=0)

    def test_zero_signal_edge_cases(self):
        est = ConvergenceEstimator()
        est.update(np.zeros(4))
        assert est.update(np.zeros(4)) == 0.0


class TestSampleAgreement:
    def test_estimates_track_true_snr(self, small_image):
        """The holdout SNR estimate correlates with the true whole-
        output SNR as a tree-sampled blur converges."""
        kernel = blur_kernel()
        n = small_image.size
        rng = np.random.default_rng(5)
        positions = rng.choice(n, size=256, replace=False)
        est = SampleAgreementEstimator.from_element_fn(
            lambda idx, im: conv2d_elements(idx, im, kernel),
            positions, small_image)
        auto = build_conv2d_automaton(small_image, chunks=8)
        ref = conv2d_precise(small_image)
        res = auto.run_simulated(total_cores=8.0)
        for rec in res.output_records("filtered"):
            true = snr_db(rec.value, ref)
            approx = est.estimate_snr_db(rec.value)
            if math.isinf(true):
                assert math.isinf(approx)
            else:
                assert abs(true - approx) < 8.0

    def test_validation(self):
        with pytest.raises(ValueError, match="lengths"):
            SampleAgreementEstimator(np.arange(3), np.arange(4))
        with pytest.raises(ValueError, match="empty"):
            SampleAgreementEstimator(np.arange(0), np.arange(0))

    def test_multichannel_truth(self):
        positions = np.array([0, 2])
        truth = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        est = SampleAgreementEstimator(positions, truth)
        value = np.zeros((2, 2, 3))
        value[0, 0] = [1, 2, 3]
        value[1, 0] = [4, 5, 6]
        assert math.isinf(est.estimate_snr_db(value))


class TestConvergenceStop:
    def test_stops_converging_automaton(self, small_image):
        auto = build_conv2d_automaton(small_image, chunks=32)
        stop = ConvergenceStop(threshold=0.005, patience=2,
                               min_versions=4)
        res = auto.run_simulated(total_cores=8.0, stop=stop)
        recs = res.output_records("filtered")
        assert res.stopped_early or recs[-1].final
        if res.stopped_early:
            # stopping early must still have delivered decent accuracy
            ref = conv2d_precise(small_image)
            assert snr_db(recs[-1].value, ref) > 15.0

    def test_min_versions_guard(self):
        from repro.core.recording import WriteRecord
        stop = ConvergenceStop(threshold=1.0, patience=1,
                               min_versions=5)
        v = np.zeros(4)
        for k in range(1, 5):
            rec = WriteRecord(float(k), "b", k, False, 0.0, v)
            assert not stop.should_stop(rec)
        rec = WriteRecord(5.0, "b", 5, False, 0.0, v)
        assert stop.should_stop(rec)

    def test_extract_for_dict_outputs(self):
        from repro.core.recording import WriteRecord
        stop = ConvergenceStop(threshold=1.0, patience=1,
                               min_versions=1,
                               extract=lambda v: v["image"])
        rec = WriteRecord(1.0, "b", 1, False, 0.0,
                          {"image": np.zeros(4)})
        stop.should_stop(rec)   # must not raise

    def test_requires_watched_buffer(self):
        from repro.core.recording import WriteRecord
        stop = ConvergenceStop()
        with pytest.raises(ValueError, match="watched"):
            stop.should_stop(WriteRecord(1.0, "b", 1, False, 0.0, None))

    def test_rejects_bad_min_versions(self):
        with pytest.raises(ValueError):
            ConvergenceStop(min_versions=0)
