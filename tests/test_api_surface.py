"""Coverage for remaining public API surfaces."""

import numpy as np
import pytest

from repro.core.buffer import VersionedBuffer
from repro.core.graph import AutomatonGraph
from repro.core.stage import Compute, PreciseStage


class TestSnapshotSurface:
    def test_empty_flag(self):
        b = VersionedBuffer("b")
        assert b.snapshot().empty
        b.write(1)
        assert not b.snapshot().empty


class TestGraphChannels:
    def test_channels_property_lists_both_ends(self):
        from repro.apps.pipeline_demo import build_organization

        auto = build_organization("sync", m=8)
        channels = auto.graph.channels
        assert "F" in channels

    def test_channels_empty_for_plain_graphs(self):
        b_in, b_out = VersionedBuffer("i"), VersionedBuffer("o")
        g = AutomatonGraph([PreciseStage("s", b_out, (b_in,),
                                         lambda x: x, cost=1.0)])
        assert g.channels == {}


class TestExplicitEnergy:
    def test_compute_energy_overrides_cost(self):
        """A stage can charge less energy than its time cost — e.g.
        low-voltage storage ops (cheap energy, same latency)."""
        from repro.core.automaton import AnytimeAutomaton
        from repro.core.iterative import AccuracyLevel, IterativeStage
        from repro.core.stage import Body, Compute, Stage, Write

        b = VersionedBuffer("o")

        class CheapEnergy(Stage):
            def __init__(self):
                super().__init__("s", b, ())

            def run_once(self, snaps, inputs_final) -> Body:
                yield Compute(100.0, energy=5.0)
                yield Write(42, final=True)

            def precise(self, input_values):
                return 42

            @property
            def precise_cost(self):
                return 100.0

        auto = AnytimeAutomaton([CheapEnergy()])
        res = auto.run_simulated(total_cores=1.0)
        assert res.duration == pytest.approx(100.0)
        assert res.energy == pytest.approx(5.0)


class TestChannelCounters:
    def test_emit_receive_counters(self):
        from repro.core.channel import UpdateChannel

        ch = UpdateChannel("x")
        ch.emit(1)
        ch.try_emit(2)
        ch.recv(timeout=0.1)
        assert ch.emitted == 2 and ch.received == 1


class TestPreemptIterative:
    def test_preempt_policy_abandons_stale_levels(self):
        """An iterative consumer under 'preempt' skips remaining levels
        when a newer input version is available, still finishing with
        the precise output."""
        from repro.core.automaton import AnytimeAutomaton
        from repro.core.iterative import AccuracyLevel, IterativeStage

        b_in = VersionedBuffer("in")
        b_mid = VersionedBuffer("mid")
        b_out = VersionedBuffer("out")
        # producer with 3 cheap versions
        producer = IterativeStage(
            "p", b_mid, (b_in,),
            [AccuracyLevel(lambda x: x - 2, 1.0),
             AccuracyLevel(lambda x: x - 1, 1.0),
             AccuracyLevel(lambda x: x, 1.0)])
        # slow 3-level consumer; preempt should cut stale passes short
        consumer = IterativeStage(
            "c", b_out, (b_mid,),
            [AccuracyLevel(lambda m: m * 10, 10.0),
             AccuracyLevel(lambda m: m * 10 + 1, 10.0),
             AccuracyLevel(lambda m: m * 10 + 2, 10.0)],
            restart_policy="preempt")
        auto = AnytimeAutomaton([producer, consumer],
                                external={"in": 7})
        res = auto.run_simulated(total_cores=2.0)
        recs = res.output_records("out")
        assert recs[-1].final and recs[-1].value == 72
        # preemption: fewer consumer versions than 3 passes x 3 levels
        assert len(recs) < 9


class TestRegistryImageHelpers:
    @pytest.mark.parametrize("app", ["2dconv", "dwt53", "kmeans"])
    def test_to_image_returns_uint8(self, app):
        from repro.apps.registry import get_app

        spec = get_app(app)
        image = spec.make_input(32, 0)
        automaton = spec.build(image)
        result = automaton.run_simulated(total_cores=8.0,
                                         schedule=spec.schedule)
        final = result.timeline.final_record(
            automaton.terminal_buffer_name)
        out = spec.to_image(final.value)
        assert np.asarray(out).dtype == np.uint8
