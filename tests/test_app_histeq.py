"""Tests for the histeq application (paper Figure 12)."""

import math

import numpy as np
import pytest

from repro.apps.histeq import (build_histeq_automaton, equalization_lut,
                               histeq_precise, histogram, lut_from_cdf)


class TestHistogram:
    def test_counts(self):
        img = np.array([[0, 0], [255, 3]], dtype=np.uint8)
        h = histogram(img)
        assert h[0] == 2 and h[3] == 1 and h[255] == 1
        assert h.sum() == 4

    def test_length_256(self, small_image):
        assert histogram(small_image).shape == (256,)


class TestLut:
    def test_monotone_nondecreasing(self, small_image):
        lut = equalization_lut(histogram(small_image))
        assert (np.diff(lut.astype(np.int64)) >= 0).all()

    def test_full_range_mapping(self, small_image):
        lut = equalization_lut(histogram(small_image))
        assert lut.max() == 255

    def test_uniform_histogram_is_near_identity(self):
        lut = equalization_lut(np.ones(256))
        assert np.abs(lut.astype(np.int64)
                      - np.arange(256)).max() <= 2

    def test_empty_histogram_degrades_gracefully(self):
        assert lut_from_cdf(np.zeros(256)).tolist() == \
            list(range(256))

    def test_single_bin_histogram(self):
        h = np.zeros(256)
        h[77] = 100
        lut = equalization_lut(h)
        assert lut.dtype == np.uint8

    def test_works_on_weighted_estimates(self, small_image):
        """The anytime pipeline feeds n/i-scaled histograms; scaling
        must not change the LUT (equalization is scale-invariant)."""
        h = histogram(small_image)
        assert np.array_equal(equalization_lut(h),
                              equalization_lut(h * 7.5))


class TestPrecise:
    def test_improves_contrast(self, small_image):
        out = histeq_precise(small_image)
        assert out.dtype == np.uint8
        assert out.std() >= small_image.std() * 0.9
        assert out.max() == 255

    def test_preserves_intensity_ordering(self, small_image):
        out = histeq_precise(small_image)
        a, b = small_image[0, 0], small_image[1, 1]
        if a < b:
            assert out[0, 0] <= out[1, 1]


class TestAutomaton:
    def test_four_stages_async_pipeline(self, small_image):
        auto = build_histeq_automaton(small_image)
        names = [s.name for s in auto.graph.stages]
        assert names == ["hist", "cdf", "lut", "apply"]
        anytime_flags = [s.anytime for s in auto.graph.stages]
        assert anytime_flags == [True, False, False, True], \
            "paper: stages 2 and 3 are not anytime"

    def test_final_output_bit_exact(self, small_image):
        auto = build_histeq_automaton(small_image, chunks=8)
        ref = histeq_precise(small_image)
        assert np.array_equal(auto.precise_output(), ref)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("equalized")
        assert np.array_equal(final.value, ref)

    def test_profile_reaches_precise_late(self, small_image):
        """The non-anytime middle stages push time-to-precise well past
        baseline (paper: ~6x)."""
        auto = build_histeq_automaton(small_image, chunks=8)
        res = auto.run_simulated(total_cores=8.0)
        prof = auto.profile(res, total_cores=8.0)
        assert math.isinf(prof.final_snr_db)
        assert prof.time_to_precise > 2.0

    def test_profile_roughly_monotone(self, small_image):
        auto = build_histeq_automaton(small_image, chunks=8)
        res = auto.run_simulated(total_cores=8.0)
        prof = auto.profile(res, total_cores=8.0)
        assert prof.is_monotonic(tolerance_db=4.0), \
            prof.monotonicity_violations(4.0)[:3]
