"""Process executor: correctness, zero-copy data plane, faults, shutdown.

The executor under test forks one worker per stage and moves ndarray
versions through shared-memory slab rings; control messages carry
*descriptors* (segment/slot/shape/dtype), never pickled arrays.  These
tests pin:

- end-to-end correctness (final outputs equal the precise reference),
- the descriptor-only wire protocol (via the executor's message tap),
- the fault runtime (in-process restarts, re-fork after hard worker
  death, degradation, strict mode),
- clean shutdown on timeout (no orphaned workers, no leaked
  shared-memory segments).

Everything here asserts *correctness*, never speed: CI boxes may have
a single core, where process parallelism only adds overhead.
"""

import multiprocessing as mp
import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.anytime.permutations import TreePermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.controller import VersionCountStop
from repro.core.faults import FaultInjector, FaultPolicy
from repro.core.mapstage import MapStage
from repro.core.procexec import ProcessExecutor
from repro.core.tracing import InMemorySink

pytestmark = pytest.mark.timeout(120)


def map_automaton(chunks=8, fn=None):
    img = np.arange(64, dtype=np.float64).reshape(8, 8)
    b_in = VersionedBuffer("in")
    b_out = VersionedBuffer("out")
    fn = fn or (lambda idx, im: np.asarray(im).reshape(-1)[idx] * 3)
    stage = MapStage("m", b_out, (b_in,), fn,
                     shape=(8, 8), dtype=np.float64,
                     permutation=TreePermutation(), chunks=chunks)
    return AnytimeAutomaton([stage], external={"in": img}), img * 3


def _holds_ndarray(obj):
    if isinstance(obj, np.ndarray):
        return True
    if isinstance(obj, (list, tuple)):
        return any(_holds_ndarray(o) for o in obj)
    if isinstance(obj, dict):
        return any(_holds_ndarray(v) for v in obj.values())
    return False


class TestCorrectness:
    def test_map_pipeline_completes_exactly(self):
        auto, ref = map_automaton()
        result = auto.run_processes(timeout_s=60.0)
        assert result.completed and not result.stopped_early
        final = result.timeline.final_record("out")
        assert final.final
        assert np.array_equal(final.value, ref)
        # the executor's copy of the final value survives plane teardown
        assert np.array_equal(result.final_values["out"], ref)
        report = result.stage_reports["m"]
        assert report.completed and report.commands > 0

    def test_intermediate_versions_are_recorded(self):
        auto, _ = map_automaton(chunks=8)
        result = auto.run_processes(timeout_s=60.0)
        records = result.output_records("out")
        assert len(records) == 8
        assert [r.version for r in records] == list(range(1, 9))
        assert all(r.energy > 0 for r in records)
        times = [r.time for r in records]
        assert times == sorted(times)

    def test_stop_condition_fires(self):
        auto, _ = map_automaton(chunks=8)
        result = auto.run_processes(stop=VersionCountStop(3),
                                    timeout_s=60.0)
        assert result.stopped_early and not result.completed
        assert len(result.output_records("out")) == 3

    def test_second_run_is_rejected(self):
        auto, _ = map_automaton()
        auto.run_processes(timeout_s=60.0)
        with pytest.raises(RuntimeError, match="already executed"):
            auto.run_processes(timeout_s=60.0)


class TestZeroCopyPlane:
    def test_control_messages_are_descriptor_only(self):
        """No pickled ndarray ever crosses a worker pipe: writes carry
        slab descriptors, snapshot replies hand out the same."""
        auto, ref = map_automaton()
        executor = ProcessExecutor(auto.graph)
        taps = []
        executor._message_tap = \
            lambda d, s, m: taps.append((d, s, m))
        result = executor.run(timeout_s=60.0)
        assert result.completed

        writes = [m for d, _, m in taps
                  if d == "recv" and m[0] == "write"]
        assert writes, "the worker wrote versions"
        assert all(m[1][0] == "tree" for m in writes), \
            "ndarray payloads must travel as descriptor trees"
        snaps = [m for d, _, m in taps
                 if d == "send" and m[0] == "snaps" and m[1]]
        assert snaps, "the worker was handed input snapshots"
        for _, _, m in taps:
            assert not _holds_ndarray(m), \
                f"raw ndarray leaked onto the control wire: {m[0]}"

    def test_final_value_detached_from_slabs(self):
        """Returned values must be private copies: the slab segments
        are unlinked at run() exit, so a view would dangle."""
        auto, ref = map_automaton()
        result = auto.run_processes(timeout_s=60.0)
        value = result.final_values["out"]
        value.base  # touch: a dangling mmap view would fault on access
        copy = np.array(value)
        assert np.array_equal(copy, ref)


class TestFaults:
    def test_injected_error_restart_recovers(self):
        auto, ref = map_automaton()
        injector = FaultInjector.from_specs(["m:3:error"])
        mem = InMemorySink()
        result = auto.run_processes(
            faults=FaultPolicy(max_retries=2, on_failure="restart"),
            injector=injector, trace=mem, timeout_s=60.0)
        report = result.stage_reports["m"]
        assert result.completed
        assert report.failures == 1
        assert report.attempts == 2
        assert report.retries == 1
        assert len(mem.for_kind("fault.injected")) == 1
        assert len(mem.for_kind("stage.restart")) == 1
        final = result.timeline.final_record("out")
        assert np.array_equal(final.value, ref)

    def test_injected_error_degrades(self):
        auto, _ = map_automaton()
        # command 8 sits mid-run: several versions land first
        injector = FaultInjector.from_specs(["m:8:error"])
        result = auto.run_processes(
            faults=FaultPolicy(on_failure="degrade"),
            injector=injector, timeout_s=60.0)
        report = result.stage_reports["m"]
        assert not result.completed
        assert report.degraded and not report.completed
        records = result.output_records("out")
        assert records, "versions before the fault were kept"
        assert not records[-1].final

    def test_strict_mode_raises(self):
        auto, _ = map_automaton()
        injector = FaultInjector.from_specs(["m:3:error"])
        with pytest.raises(RuntimeError, match="failed during process"):
            auto.run_processes(faults=FaultPolicy(on_failure="fail"),
                               injector=injector, strict=True,
                               timeout_s=60.0)

    def test_hard_worker_death_restarts_from_fresh_fork(self, tmp_path):
        """SIGKILL (no exception, no message — just EOF on the pipe)
        must hit the same fault policy; a restart re-forks the stage
        from the parent's pristine copy and completes exactly."""
        flag = str(tmp_path / "died-once")

        def fn(idx, im, path=flag):
            if not os.path.exists(path):
                open(path, "w").close()
                os.kill(os.getpid(), signal.SIGKILL)
            return np.asarray(im).reshape(-1)[idx] * 3

        auto, ref = map_automaton(fn=fn)
        result = auto.run_processes(
            faults=FaultPolicy(max_retries=1, on_failure="restart"),
            timeout_s=60.0)
        report = result.stage_reports["m"]
        assert result.completed
        assert report.failures == 1
        assert report.attempts == 2
        final = result.timeline.final_record("out")
        assert np.array_equal(final.value, ref)

    def test_hard_worker_death_degrades_without_retries(self, tmp_path):
        flag = str(tmp_path / "died-once")

        def fn(idx, im, path=flag):
            if not os.path.exists(path):
                open(path, "w").close()
                os.kill(os.getpid(), signal.SIGKILL)
            return np.asarray(im).reshape(-1)[idx] * 3

        auto, _ = map_automaton(fn=fn)
        result = auto.run_processes(
            faults=FaultPolicy(on_failure="degrade"), timeout_s=60.0)
        report = result.stage_reports["m"]
        assert not result.completed
        assert report.degraded
        assert auto.graph.buffers["out"].sealed


class TestShutdownHygiene:
    def _slow_automaton(self):
        def fn(idx, im):
            time.sleep(0.05)
            return np.asarray(im).reshape(-1)[idx] * 3

        return map_automaton(chunks=32, fn=fn)

    def _assert_no_orphans(self):
        deadline = time.monotonic() + 5.0
        while mp.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert mp.active_children() == []

    @staticmethod
    def _spy_segment_names(executor):
        """The cleanup ledger clears itself after unlinking; capture the
        names the instant before so the test can probe for leaks."""
        captured: set[str] = set()
        original = executor._cleanup_plane

        def spy():
            captured.update(executor._registry.known)
            original()

        executor._cleanup_plane = spy
        return captured

    def test_timeout_reaps_workers_and_segments(self):
        """The PR's bugfix: ``timeout_s`` expiry must leave no orphaned
        worker processes and no leaked shared-memory segments."""
        auto, _ = self._slow_automaton()
        executor = ProcessExecutor(auto.graph)
        names = self._spy_segment_names(executor)
        result = executor.run(timeout_s=0.3)
        assert result.stopped_early and not result.completed
        self._assert_no_orphans()
        assert names, "the run created slab segments"
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_completed_run_leaves_no_residue(self):
        auto, _ = map_automaton()
        executor = ProcessExecutor(auto.graph)
        names = self._spy_segment_names(executor)
        result = executor.run(timeout_s=60.0)
        assert result.completed
        self._assert_no_orphans()
        assert names
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
