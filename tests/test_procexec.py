"""Process executor: correctness, zero-copy data plane, faults, shutdown.

The executor under test forks one worker per stage and moves ndarray
versions through shared-memory slab rings; control messages carry
*descriptors* (segment/slot/shape/dtype), never pickled arrays.  These
tests pin:

- end-to-end correctness (final outputs equal the precise reference),
- the descriptor-only wire protocol (via the executor's message tap),
- the fault runtime (in-process restarts, re-fork after hard worker
  death, degradation, strict mode),
- clean shutdown on timeout (no orphaned workers, no leaked
  shared-memory segments).

Everything here asserts *correctness*, never speed: CI boxes may have
a single core, where process parallelism only adds overhead.
"""

import multiprocessing as mp
import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.anytime.permutations import TreePermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.controller import VersionCountStop
from repro.core.faults import FaultInjector, FaultPolicy
from repro.core.mapstage import MapStage
from repro.core.procexec import ProcessExecutor
from repro.core.tracing import InMemorySink

pytestmark = pytest.mark.timeout(120)


def map_automaton(chunks=8, fn=None):
    img = np.arange(64, dtype=np.float64).reshape(8, 8)
    b_in = VersionedBuffer("in")
    b_out = VersionedBuffer("out")
    fn = fn or (lambda idx, im: np.asarray(im).reshape(-1)[idx] * 3)
    stage = MapStage("m", b_out, (b_in,), fn,
                     shape=(8, 8), dtype=np.float64,
                     permutation=TreePermutation(), chunks=chunks)
    return AnytimeAutomaton([stage], external={"in": img}), img * 3


def _holds_ndarray(obj):
    if isinstance(obj, np.ndarray):
        return True
    if isinstance(obj, (list, tuple)):
        return any(_holds_ndarray(o) for o in obj)
    if isinstance(obj, dict):
        return any(_holds_ndarray(v) for v in obj.values())
    return False


class TestCorrectness:
    def test_map_pipeline_completes_exactly(self):
        auto, ref = map_automaton()
        result = auto.run_processes(timeout_s=60.0)
        assert result.completed and not result.stopped_early
        final = result.timeline.final_record("out")
        assert final.final
        assert np.array_equal(final.value, ref)
        # the executor's copy of the final value survives plane teardown
        assert np.array_equal(result.final_values["out"], ref)
        report = result.stage_reports["m"]
        assert report.completed and report.commands > 0

    def test_intermediate_versions_are_recorded(self):
        auto, _ = map_automaton(chunks=8)
        result = auto.run_processes(timeout_s=60.0)
        records = result.output_records("out")
        assert len(records) == 8
        assert [r.version for r in records] == list(range(1, 9))
        assert all(r.energy > 0 for r in records)
        times = [r.time for r in records]
        assert times == sorted(times)

    def test_stop_condition_fires(self):
        auto, _ = map_automaton(chunks=8)
        result = auto.run_processes(stop=VersionCountStop(3),
                                    timeout_s=60.0)
        assert result.stopped_early and not result.completed
        assert len(result.output_records("out")) == 3

    def test_second_run_is_rejected(self):
        auto, _ = map_automaton()
        auto.run_processes(timeout_s=60.0)
        with pytest.raises(RuntimeError, match="already executed"):
            auto.run_processes(timeout_s=60.0)


class TestZeroCopyPlane:
    def test_control_messages_are_descriptor_only(self):
        """No pickled ndarray ever crosses a worker pipe: writes carry
        slab descriptors, snapshot replies hand out the same."""
        auto, ref = map_automaton()
        executor = ProcessExecutor(auto.graph)
        taps = []
        executor._message_tap = \
            lambda d, s, m: taps.append((d, s, m))
        result = executor.run(timeout_s=60.0)
        assert result.completed

        writes = [m for d, _, m in taps
                  if d == "recv" and m[0] == "write"]
        assert writes, "the worker wrote versions"
        assert all(m[1][0] == "tree" for m in writes), \
            "ndarray payloads must travel as descriptor trees"
        snaps = [m for d, _, m in taps
                 if d == "send" and m[0] == "snaps" and m[1]]
        assert snaps, "the worker was handed input snapshots"
        for _, _, m in taps:
            assert not _holds_ndarray(m), \
                f"raw ndarray leaked onto the control wire: {m[0]}"

    def test_final_value_detached_from_slabs(self):
        """Returned values must be private copies: the slab segments
        are unlinked at run() exit, so a view would dangle."""
        auto, ref = map_automaton()
        result = auto.run_processes(timeout_s=60.0)
        value = result.final_values["out"]
        value.base  # touch: a dangling mmap view would fault on access
        copy = np.array(value)
        assert np.array_equal(copy, ref)


class TestFaults:
    def test_injected_error_restart_recovers(self):
        auto, ref = map_automaton()
        injector = FaultInjector.from_specs(["m:3:error"])
        mem = InMemorySink()
        result = auto.run_processes(
            faults=FaultPolicy(max_retries=2, on_failure="restart"),
            injector=injector, trace=mem, timeout_s=60.0)
        report = result.stage_reports["m"]
        assert result.completed
        assert report.failures == 1
        assert report.attempts == 2
        assert report.retries == 1
        assert len(mem.for_kind("fault.injected")) == 1
        assert len(mem.for_kind("stage.restart")) == 1
        final = result.timeline.final_record("out")
        assert np.array_equal(final.value, ref)

    def test_injected_error_degrades(self):
        auto, _ = map_automaton()
        # command 8 sits mid-run: several versions land first
        injector = FaultInjector.from_specs(["m:8:error"])
        result = auto.run_processes(
            faults=FaultPolicy(on_failure="degrade"),
            injector=injector, timeout_s=60.0)
        report = result.stage_reports["m"]
        assert not result.completed
        assert report.degraded and not report.completed
        records = result.output_records("out")
        assert records, "versions before the fault were kept"
        assert not records[-1].final

    def test_strict_mode_raises(self):
        auto, _ = map_automaton()
        injector = FaultInjector.from_specs(["m:3:error"])
        with pytest.raises(RuntimeError, match="failed during process"):
            auto.run_processes(faults=FaultPolicy(on_failure="fail"),
                               injector=injector, strict=True,
                               timeout_s=60.0)

    def test_hard_worker_death_restarts_from_fresh_fork(self, tmp_path):
        """SIGKILL (no exception, no message — just EOF on the pipe)
        must hit the same fault policy; a restart re-forks the stage
        from the parent's pristine copy and completes exactly."""
        flag = str(tmp_path / "died-once")

        def fn(idx, im, path=flag):
            if not os.path.exists(path):
                open(path, "w").close()
                os.kill(os.getpid(), signal.SIGKILL)
            return np.asarray(im).reshape(-1)[idx] * 3

        auto, ref = map_automaton(fn=fn)
        result = auto.run_processes(
            faults=FaultPolicy(max_retries=1, on_failure="restart"),
            timeout_s=60.0)
        report = result.stage_reports["m"]
        assert result.completed
        assert report.failures == 1
        assert report.attempts == 2
        final = result.timeline.final_record("out")
        assert np.array_equal(final.value, ref)

    def test_hard_worker_death_degrades_without_retries(self, tmp_path):
        flag = str(tmp_path / "died-once")

        def fn(idx, im, path=flag):
            if not os.path.exists(path):
                open(path, "w").close()
                os.kill(os.getpid(), signal.SIGKILL)
            return np.asarray(im).reshape(-1)[idx] * 3

        auto, _ = map_automaton(fn=fn)
        result = auto.run_processes(
            faults=FaultPolicy(on_failure="degrade"), timeout_s=60.0)
        report = result.stage_reports["m"]
        assert not result.completed
        assert report.degraded
        assert auto.graph.buffers["out"].sealed


class TestCommandLeases:
    def test_leased_run_is_bit_identical_to_sync(self):
        """The lease safety rule made executable: the version ladder a
        leased worker publishes must equal the one-round-trip-per-command
        protocol's ladder bit for bit."""
        results = {}
        for k in (1, 8):
            auto, _ = map_automaton(chunks=8)
            executor = ProcessExecutor(auto.graph, lease_k=k)
            results[k] = executor.run(timeout_s=60.0)
        sync, leased = results[1], results[8]
        assert sync.completed and leased.completed
        s_recs = sync.output_records("out")
        l_recs = leased.output_records("out")
        assert [r.version for r in s_recs] == [r.version for r in l_recs]
        for s, l in zip(s_recs, l_recs):
            assert s.final == l.final
            assert np.array_equal(s.value, l.value)

    def test_leases_cut_round_trips(self):
        """The tentpole's whole point: granted leases elide the blocking
        reply on intermediate writes, so the pipe round-trips per run
        drop by at least 2x on a batched map workload."""
        trips = {}
        for k in (1, 8):
            auto, _ = map_automaton(chunks=32)
            executor = ProcessExecutor(auto.graph, lease_k=k)
            result = executor.run(timeout_s=60.0)
            assert result.completed
            trips[k] = result.stage_reports["m"].round_trips
        assert trips[1] > 0 and trips[8] > 0
        assert trips[8] * 2 <= trips[1], \
            f"leases saved too little: {trips[8]} vs {trips[1]} round-trips"

    def test_leased_writes_stay_descriptor_only(self):
        """Fire-and-forget writes ride the same descriptor wire: no
        pickled ndarray may leak even when replies are elided."""
        auto, _ = map_automaton(chunks=32)
        executor = ProcessExecutor(auto.graph, lease_k=8)
        taps = []
        executor._message_tap = lambda d, s, m: taps.append((d, s, m))
        result = executor.run(timeout_s=60.0)
        assert result.completed
        writes = [m for d, _, m in taps
                  if d == "recv" and m[0] == "write"]
        leased = [m for m in writes if len(m) > 3 and m[3]]
        assert leased, "the worker used its lease"
        assert all(m[1][0] == "tree" for m in writes)
        for _, _, m in taps:
            assert not _holds_ndarray(m)

    def test_lease_k_one_run_has_no_leased_writes(self):
        """lease_k=1 must reproduce the historical protocol exactly:
        every write blocks for its reply."""
        auto, _ = map_automaton(chunks=8)
        executor = ProcessExecutor(auto.graph, lease_k=1)
        taps = []
        executor._message_tap = lambda d, s, m: taps.append((d, s, m))
        result = executor.run(timeout_s=60.0)
        assert result.completed
        writes = [m for d, _, m in taps
                  if d == "recv" and m[0] == "write"]
        assert writes
        assert all(not (len(m) > 3 and m[3]) for m in writes)

    def test_lease_k_validated(self):
        auto, _ = map_automaton()
        with pytest.raises(ValueError, match="lease_k"):
            ProcessExecutor(auto.graph, lease_k=0)

    def test_faulty_leased_run_still_recovers(self):
        """A fault raised mid-lease must surface at the next synchronous
        exchange and drive the normal restart path to an exact result."""
        auto, ref = map_automaton(chunks=32)
        injector = FaultInjector.from_specs(["m:3:error"])
        executor = ProcessExecutor(
            auto.graph, faults=FaultPolicy(max_retries=2,
                                           on_failure="restart"),
            injector=injector, lease_k=8)
        result = executor.run(timeout_s=60.0)
        report = result.stage_reports["m"]
        assert result.completed
        assert report.failures == 1 and report.attempts == 2
        final = result.timeline.final_record("out")
        assert np.array_equal(final.value, ref)


class TestTraceClockSkew:
    def test_worker_events_merge_monotone_with_parent_spans(self):
        """Worker-side trace events are re-based onto the parent clock
        (epoch correction), so a fault injected inside the worker must
        timestamp *inside* its stage's start/finish span, and the merged
        per-stage stream must be monotone."""
        auto, _ = map_automaton(chunks=8)
        injector = FaultInjector.from_specs(["m:3:error"])
        mem = InMemorySink()
        result = auto.run_processes(
            faults=FaultPolicy(max_retries=2, on_failure="restart"),
            injector=injector, trace=mem, timeout_s=60.0)
        assert result.completed

        starts = mem.for_kind("stage.start")
        finishes = mem.for_kind("stage.finish")
        faults = mem.for_kind("fault.injected")
        assert starts and finishes and len(faults) == 1

        run_start = min(e.ts for e in starts)
        run_finish = max(e.ts for e in finishes)
        fault = faults[0]
        assert run_start <= fault.ts <= run_finish, \
            (f"worker fault event at {fault.ts} fell outside the parent "
             f"span [{run_start}, {run_finish}]: clock skew")

        # causality across the process boundary: the parent's restart
        # event reacts to the worker's fault, so the corrected fault
        # timestamp must precede it (raw worker clocks would not)
        restarts = mem.for_kind("stage.restart")
        assert len(restarts) == 1
        assert fault.ts <= restarts[0].ts

        # each emitter's own stream stays monotone after correction
        for kind in ("stage.start", "stage.finish", "fault.injected"):
            ts = [e.ts for e in mem.for_kind(kind)]
            assert ts == sorted(ts)

        # writes carry parent timestamps; versions and time agree
        writes = [e for e in mem.for_kind("buffer.write")
                  if e.target == "out"]
        by_version = sorted(writes, key=lambda e: e.args["version"])
        ts = [e.ts for e in by_version]
        assert ts == sorted(ts)


class TestShutdownHygiene:
    def _slow_automaton(self):
        def fn(idx, im):
            time.sleep(0.05)
            return np.asarray(im).reshape(-1)[idx] * 3

        return map_automaton(chunks=32, fn=fn)

    def _assert_no_orphans(self):
        deadline = time.monotonic() + 5.0
        while mp.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert mp.active_children() == []

    @staticmethod
    def _spy_segment_names(executor):
        """The cleanup ledger clears itself after unlinking; capture the
        names the instant before so the test can probe for leaks."""
        captured: set[str] = set()
        original = executor._cleanup_plane

        def spy():
            captured.update(executor._registry.known)
            original()

        executor._cleanup_plane = spy
        return captured

    def test_timeout_reaps_workers_and_segments(self):
        """The PR's bugfix: ``timeout_s`` expiry must leave no orphaned
        worker processes and no leaked shared-memory segments."""
        auto, _ = self._slow_automaton()
        # lease_k=1 keeps the kernel un-batched so every chunk pays its
        # sleep and the run reliably outlives the timeout
        executor = ProcessExecutor(auto.graph, lease_k=1)
        names = self._spy_segment_names(executor)
        result = executor.run(timeout_s=0.3)
        assert result.stopped_early and not result.completed
        self._assert_no_orphans()
        assert names, "the run created slab segments"
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_completed_run_leaves_no_residue(self):
        auto, _ = map_automaton()
        executor = ProcessExecutor(auto.graph)
        names = self._spy_segment_names(executor)
        result = executor.run(timeout_s=60.0)
        assert result.completed
        self._assert_no_orphans()
        assert names
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
