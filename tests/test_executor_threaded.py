"""Tests for the real-thread executor (the interactive path).

Sizes are kept tiny: these tests verify semantics (completion,
interruption, output validity), not performance.
"""

import threading
import time

import numpy as np
import pytest

from repro.anytime.permutations import SequentialPermutation, TreePermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.channel import UpdateChannel
from repro.core.controller import ManualStop, VersionCountStop
from repro.core.executor import ThreadedExecutor
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.core.mapstage import MapStage
from repro.core.stage import PreciseStage
from repro.core.syncstage import SynchronousStage

# Threaded-executor tests hang rather than fail when a wait goes wrong;
# the conftest watchdog turns a wedge into a fast failure.
pytestmark = pytest.mark.timeout(60)


def map_automaton(chunks=8):
    img = np.arange(64, dtype=np.float64).reshape(8, 8)
    b_in = VersionedBuffer("in")
    b_out = VersionedBuffer("out")
    stage = MapStage("m", b_out, (b_in,),
                     lambda idx, im: np.asarray(im).reshape(-1)[idx] * 3,
                     shape=(8, 8), dtype=np.float64,
                     permutation=TreePermutation(), chunks=chunks)
    return AnytimeAutomaton([stage], external={"in": img}), img * 3


class TestCompletion:
    def test_single_stage_runs_to_precise(self):
        auto, ref = map_automaton()
        res = auto.run_threaded(timeout_s=30.0)
        assert res.completed and not res.stopped_early
        final = res.timeline.final_record("out")
        assert final is not None
        assert np.array_equal(final.value, ref)

    def test_pipeline_runs_to_precise(self):
        b_in = VersionedBuffer("in")
        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        f = IterativeStage("f", b_f, (b_in,),
                           [AccuracyLevel(lambda x: x // 2, 1.0),
                            AccuracyLevel(lambda x: x, 1.0)])
        g = PreciseStage("g", b_g, (b_f,), lambda F: F * 10, cost=1.0)
        auto = AnytimeAutomaton([f, g], external={"in": 9})
        res = auto.run_threaded(timeout_s=30.0)
        final = res.timeline.final_record("G")
        assert final.value == 90

    def test_synchronous_pipeline_threaded(self):
        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        ch = UpdateChannel("F", capacity=1)

        from repro.core.diffusive import DiffusiveStage

        class Digits(DiffusiveStage):
            def __init__(self):
                super().__init__("f", b_f, (), shape=5,
                                 permutation=SequentialPermutation(),
                                 chunks=5, cost_per_element=1.0,
                                 emit_to=ch)

            def init_state(self, values):
                return {"total": 0}

            def process_chunk(self, state, indices, values):
                state["total"] += int(indices[0]) + 1
                return int(indices[0]) + 1

            def materialize(self, state, count, values):
                return state["total"]

            def precise(self, input_values):
                return 15

        g = SynchronousStage("g", b_g, ch, initial_fn=lambda: 0,
                             update_fn=lambda acc, x: acc + x * x,
                             update_cost=lambda x: 1.0,
                             precise_fn=lambda fv: 55,
                             precise_cost=1.0)
        auto = AnytimeAutomaton([Digits(), g])
        res = auto.run_threaded(timeout_s=30.0)
        assert res.timeline.final_record("G").value == \
            sum(d * d for d in range(1, 6))


class TestInterruption:
    def test_manual_stop_mid_run(self):
        """The hold-the-enter-key scenario: stop from another thread;
        the newest published version remains valid."""
        stop = ManualStop()
        auto, ref = map_automaton(chunks=64)
        timer = threading.Timer(0.05, stop.stop)
        timer.start()
        res = auto.run_threaded(stop=stop, timeout_s=30.0)
        timer.cancel()
        records = res.output_records("out")
        if records:
            last = records[-1].value
            assert last.shape == (8, 8)
            assert np.isfinite(last).all()

    def test_version_count_stop(self):
        auto, _ = map_automaton(chunks=16)
        res = auto.run_threaded(stop=VersionCountStop(2),
                                timeout_s=30.0)
        assert res.stopped_early
        assert len(res.output_records("out")) >= 2

    def test_timeout_halts(self):
        img = np.arange(16, dtype=np.float64)
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")

        def slow(idx, im):
            time.sleep(0.02)
            return np.asarray(im).reshape(-1)[idx]

        stage = MapStage("m", b_out, (b_in,), slow, shape=16,
                         dtype=np.float64,
                         permutation=TreePermutation(), chunks=16)
        auto = AnytimeAutomaton([stage], external={"in": img})
        t0 = time.perf_counter()
        res = auto.run_threaded(timeout_s=0.1)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0
        assert res.stopped_early or res.completed


class TestErrors:
    def test_stage_exception_returns_partial_result(self):
        """A crash no longer discards the run: the result carries the
        timeline, final values and the error (fail-fast default)."""
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")

        def boom(x):
            raise ValueError("kaboom")

        stage = PreciseStage("s", b_out, (b_in,), boom, cost=1.0)
        auto = AnytimeAutomaton([stage], external={"in": 1})
        res = auto.run_threaded(timeout_s=10.0)
        assert not res.completed
        assert not res.stopped_early     # a crash is not an interrupt
        assert res.errors and res.errors[0][0] == "s"
        assert isinstance(res.errors[0][1], ValueError)
        report = res.stage_reports["s"]
        assert report.failed and report.failures == 1
        assert "kaboom" in report.last_error

    def test_stage_exception_raises_under_strict(self):
        """strict=True preserves the historical raise-on-failure path."""
        b_in = VersionedBuffer("in")
        b_out = VersionedBuffer("out")

        def boom(x):
            raise ValueError("kaboom")

        stage = PreciseStage("s", b_out, (b_in,), boom, cost=1.0)
        auto = AnytimeAutomaton([stage], external={"in": 1})
        with pytest.raises(RuntimeError, match="failed"):
            auto.run_threaded(timeout_s=10.0, strict=True)

    def test_request_stop_idempotent(self):
        auto, _ = map_automaton()
        ex = ThreadedExecutor(auto.graph)
        ex.request_stop()
        ex.request_stop()
        res = ex.run(timeout_s=10.0)
        assert res.stopped_early


class TestEquivalence:
    def test_threaded_and_simulated_agree_on_final_output(self):
        auto_t, ref = map_automaton()
        res_t = auto_t.run_threaded(timeout_s=30.0)
        auto_s, _ = map_automaton()
        res_s = auto_s.run_simulated(total_cores=4.0)
        final_t = res_t.timeline.final_record("out").value
        final_s = res_s.timeline.final_record("out").value
        assert np.array_equal(final_t, final_s)
        assert np.array_equal(final_t, ref)
