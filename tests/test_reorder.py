"""Tests for the near-data in-memory reordering model (IV-C3)."""

import numpy as np
import pytest

from repro.anytime.permutations import TreePermutation
from repro.apps.conv2d import build_conv2d_automaton, conv2d_precise
from repro.hw.reorder import ReorderEngine, reorder_layout


class TestEngine:
    def test_cost_is_linear(self):
        engine = ReorderEngine(cost_per_element=0.5)
        assert engine.reorder_cost(1000) == 500.0
        assert engine.reorder_cost(0) == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ReorderEngine(cost_per_element=0.0)
        with pytest.raises(ValueError):
            ReorderEngine().reorder_cost(-1)

    def test_breakeven(self):
        engine = ReorderEngine(cost_per_element=0.5)
        # an 81-op/pixel kernel amortizes the reorder almost for free
        assert engine.breakeven_penalty(100, 81.0) < 1.01
        # a 1-op/pixel kernel needs a 1.5x penalty to justify it
        assert engine.breakeven_penalty(100, 1.0) == pytest.approx(1.5)


class TestLayout:
    def test_reordered_sequential_walk_matches_permuted_gather(self):
        data = np.arange(64, dtype=np.int64)
        order = TreePermutation().order(64)
        laid_out = reorder_layout(data, order)
        assert np.array_equal(laid_out, data[order])

    def test_multi_axis_payload(self):
        data = np.arange(24, dtype=np.int64).reshape(8, 3)
        order = np.arange(7, -1, -1)
        out = reorder_layout(data, order)
        assert np.array_equal(out, data[::-1])

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            reorder_layout(np.arange(4), np.array([0, 0, 1, 2]))


class TestStageIntegration:
    def test_reorder_removes_penalty_plus_stream_pass(self, small_image):
        plain = build_conv2d_automaton(small_image, chunks=4)
        reordered = build_conv2d_automaton(small_image, chunks=4,
                                           reorder=True)
        r_plain = plain.run_simulated(total_cores=8.0)
        r_re = reordered.run_simulated(total_cores=8.0)
        assert r_re.duration < r_plain.duration
        # exact model: work = reorder pass + sequential compute
        stage = reordered.graph.stages[0]
        expected = (stage.reorder_engine.reorder_cost(stage.n_elements)
                    + stage.n_elements * stage.cost_per_element) / 8.0
        assert r_re.duration == pytest.approx(expected)

    def test_reorder_preserves_output(self, small_image):
        auto = build_conv2d_automaton(small_image, chunks=4,
                                      reorder=True)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("filtered")
        assert np.array_equal(final.value, conv2d_precise(small_image))

    def test_prefetcher_and_reorder_mutually_exclusive(self, small_image):
        with pytest.raises(ValueError, match="one locality"):
            build_conv2d_automaton(small_image, prefetcher=True,
                                   reorder=True)
