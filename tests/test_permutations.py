"""Tests for sampling permutations (paper Section III-B2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anytime.permutations import (LfsrPermutation, Permutation,
                                        ReversedPermutation,
                                        SequentialPermutation,
                                        StridedPermutation,
                                        TreePermutation, bit_reverse,
                                        is_permutation, split_blocked,
                                        split_cyclic)

ALL_PERMS = [SequentialPermutation(), ReversedPermutation(),
             StridedPermutation(3), StridedPermutation(7),
             TreePermutation(), LfsrPermutation(seed=1),
             LfsrPermutation(seed=42)]


class TestBijectivity:
    """The model's correctness rests on p being bijective: every element
    is processed exactly once, so the precise output is guaranteed."""

    @pytest.mark.parametrize("perm", ALL_PERMS,
                             ids=lambda p: f"{p.name}-{id(p) % 97}")
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 16, 64, 100, 257, 1024])
    def test_order_is_bijection(self, perm, n):
        assert is_permutation(perm.order(n), n)

    @given(st.integers(min_value=1, max_value=3000))
    @settings(max_examples=30, deadline=None)
    def test_tree_bijective_any_size(self, n):
        assert is_permutation(TreePermutation().order(n), n)

    @given(st.integers(min_value=1, max_value=3000),
           st.integers(min_value=1, max_value=2 ** 20))
    @settings(max_examples=30, deadline=None)
    def test_lfsr_bijective_any_size_and_seed(self, n, seed):
        assert is_permutation(LfsrPermutation(seed=seed).order(n), n)

    @pytest.mark.parametrize("shape", [(4, 4), (8, 8), (16, 4), (5, 7),
                                       (2, 2, 2), (3, 5, 2)])
    def test_tree_bijective_multidim(self, shape):
        n = int(np.prod(shape))
        assert is_permutation(TreePermutation().order(shape), n)


class TestSequential:
    def test_ascending(self):
        assert SequentialPermutation().order(5).tolist() == [0, 1, 2, 3, 4]

    def test_reversed(self):
        assert ReversedPermutation().order(5).tolist() == [4, 3, 2, 1, 0]


class TestStrided:
    def test_order_matches_perforation_sweep(self):
        assert StridedPermutation(3).order(8).tolist() == \
            [0, 3, 6, 1, 4, 7, 2, 5]

    def test_stride_one_is_sequential(self):
        assert StridedPermutation(1).order(6).tolist() == list(range(6))

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            StridedPermutation(0)


class TestTree:
    def test_bit_reverse_primitive(self):
        values = np.arange(8)
        assert bit_reverse(values, 3).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_paper_figure4_one_dimensional(self):
        """Figure 4: p(b3 b2 b1 b0) = b0 b1 b2 b3 for 16 elements."""
        order = TreePermutation().order(16)
        expected = [int(f"{i:04b}"[::-1], 2) for i in range(16)]
        assert order.tolist() == expected

    def test_paper_figure5_two_dimensional_first_samples(self):
        """Figure 5: after 4 elements of an 8x8 set, a 2x2 subgrid with
        stride 4 has been visited."""
        coords = TreePermutation().coordinates((8, 8))
        assert set(map(tuple, coords[:4].tolist())) == \
            {(0, 0), (0, 4), (4, 0), (4, 4)}
        assert tuple(coords[0]) == (0, 0)

    def test_paper_figure5_bit_formula(self):
        """The paper's exact mapping for 8x8: sequence index bits
        b5..b0 -> row = b1 b3 b5, col = b0 b2 b4."""
        order = TreePermutation().order((8, 8))
        for i, flat in enumerate(order.tolist()):
            b = [(i >> k) & 1 for k in range(6)]
            row = (b[1] << 2) | (b[3] << 1) | b[5]
            col = (b[0] << 2) | (b[2] << 1) | b[4]
            assert flat == row * 8 + col

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_progressive_resolution(self, k):
        """After 4**k samples of a 16x16 set, exactly the uniform
        2**k x 2**k subgrid (stride 16 / 2**k) has been visited."""
        coords = TreePermutation().coordinates((16, 16))
        stride = 16 >> k
        prefix = {tuple(c) for c in coords[:4 ** k].tolist()}
        expected = {(r, c) for r in range(0, 16, stride)
                    for c in range(0, 16, stride)}
        assert prefix == expected

    def test_levels_are_monotone_in_visit_order(self):
        from repro.anytime.fill import sample_levels
        order = TreePermutation().order((32, 32))
        levels = sample_levels(order, (32, 32))
        assert (np.diff(levels) >= 0).all()

    def test_single_element(self):
        assert TreePermutation().order(1).tolist() == [0]

    def test_rejects_huge_shape(self):
        with pytest.raises(ValueError, match="too large"):
            TreePermutation().order((1 << 21, 1 << 21))


class TestLfsrPermutation:
    def test_starts_at_zero(self):
        """Index 0 is prepended (an LFSR never emits state 0)."""
        assert LfsrPermutation().order(100)[0] == 0

    def test_not_memory_order(self):
        order = LfsrPermutation().order(256)
        assert order.tolist() != list(range(256))

    def test_deterministic(self):
        a = LfsrPermutation(seed=9).order(500)
        b = LfsrPermutation(seed=9).order(500)
        assert np.array_equal(a, b)

    def test_seed_changes_sequence(self):
        a = LfsrPermutation(seed=1).order(500)
        b = LfsrPermutation(seed=2).order(500)
        assert not np.array_equal(a, b)

    def test_rejects_nonpositive_seed(self):
        with pytest.raises(ValueError):
            LfsrPermutation(seed=0)

    def test_power_of_two_size(self):
        """Sizes equal to 2**w need a wider register (period > n - 1)."""
        assert is_permutation(LfsrPermutation().order(256), 256)

    def test_spread_is_unbiased(self):
        """The first half of the sequence should cover low and high
        halves of the index space roughly equally (no memory-order
        bias, unlike sequential sampling)."""
        order = LfsrPermutation(seed=3).order(4096)
        first_half = order[:2048]
        low = (first_half < 2048).sum()
        assert 800 < low < 1250


class TestSplits:
    """Multi-threaded sampling (paper IV-C1)."""

    def test_cyclic_partition_is_exact(self):
        order = TreePermutation().order(64)
        parts = split_cyclic(order, 4)
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(64))

    def test_cyclic_preserves_prefix_coverage(self):
        order = TreePermutation().order(256)
        parts = split_cyclic(order, 8)
        k = 4
        done = np.concatenate([p[:k] for p in parts])
        assert set(done.tolist()) == set(order[:32].tolist())

    def test_blocked_partition_is_exact(self):
        order = LfsrPermutation().order(100)
        parts = split_blocked(order, 3)
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(100))

    def test_more_workers_than_elements(self):
        parts = split_cyclic(np.arange(3), 8)
        assert sum(len(p) for p in parts) == 3

    @pytest.mark.parametrize("split", [split_cyclic, split_blocked])
    def test_rejects_zero_workers(self, split):
        with pytest.raises(ValueError):
            split(np.arange(4), 0)


class TestIsPermutation:
    def test_accepts_identity(self):
        assert is_permutation(np.arange(5), 5)

    def test_rejects_duplicates(self):
        assert not is_permutation(np.array([0, 1, 1, 3]), 4)

    def test_rejects_out_of_range(self):
        assert not is_permutation(np.array([0, 1, 4]), 3)

    def test_rejects_wrong_length(self):
        assert not is_permutation(np.arange(4), 5)


class TestEquality:
    def test_value_semantics(self):
        assert StridedPermutation(3) == StridedPermutation(3)
        assert StridedPermutation(3) != StridedPermutation(4)
        assert TreePermutation() == TreePermutation()
        assert LfsrPermutation(1) != LfsrPermutation(2)

    def test_hashable(self):
        assert len({TreePermutation(), TreePermutation(),
                    LfsrPermutation(1)}) == 2

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Permutation().order(4)
