"""Tests for the Figure 10 organization demo."""

import numpy as np
import pytest

from repro.apps.pipeline_demo import (ORGANIZATIONS, build_organization,
                                      precise_result, sensor_input,
                                      weight_matrix)
from repro.core.scheduling import equal_shares


@pytest.fixture(scope="module")
def org_runs():
    """Run all five organizations once at m=32 (module-cached)."""
    out = {}
    for org in ORGANIZATIONS:
        auto = build_organization(org, m=32)
        res = auto.run_simulated(
            total_cores=float(len(auto.graph.stages)),
            schedule=equal_shares)
        out[org] = (auto, res)
    return out


class TestInputs:
    def test_sensor_deterministic(self):
        assert np.array_equal(sensor_input(16, seed=1),
                              sensor_input(16, seed=1))

    def test_reference_product(self):
        s = sensor_input(16)
        w = weight_matrix(16)
        assert np.array_equal(precise_result(s, w), s @ w)


class TestOrganizations:
    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="known"):
            build_organization("quantum")

    def test_all_reach_identical_precise_output(self, org_runs):
        """Every organization computes the same application; only the
        schedule of intermediate outputs differs."""
        finals = {}
        for org, (auto, res) in org_runs.items():
            rec = res.timeline.final_record(auto.terminal_buffer_name)
            assert rec is not None, org
            finals[org] = rec.value
        ref = finals["baseline"]
        for org, value in finals.items():
            assert np.array_equal(value, ref), org

    def test_figure10_time_ordering(self, org_runs):
        times = {org: res.timeline.final_record(
            auto.terminal_buffer_name).time
            for org, (auto, res) in org_runs.items()}
        assert times["sync"] < times["baseline"]
        assert times["baseline"] == pytest.approx(
            times["diffusive-async"], rel=0.05)
        assert times["baseline"] < times["iterative-async"]
        assert times["iterative-async"] < times["iterative"]

    def test_exact_figure10_ratios(self, org_runs):
        """With one core per stage and cf = cg the completion times are
        analytically 1.0 / 1.5 / 1.25 / 1.0 / 0.75 of baseline."""
        times = {org: res.timeline.final_record(
            auto.terminal_buffer_name).time
            for org, (auto, res) in org_runs.items()}
        base = times["baseline"]
        assert times["iterative"] / base == pytest.approx(1.5)
        assert times["iterative-async"] / base == pytest.approx(1.25)
        assert times["diffusive-async"] / base == pytest.approx(1.0)
        assert times["sync"] / base == pytest.approx(0.75)

    def test_pipelined_orgs_emit_early_approximations(self, org_runs):
        for org in ("iterative-async", "diffusive-async", "sync"):
            auto, res = org_runs[org]
            recs = res.output_records(auto.terminal_buffer_name)
            assert len(recs) >= 2, org
            assert not recs[0].final

    def test_half_precision_first_output(self, org_runs):
        """The first output of the pipelined organizations is the
        half-precision product: the dot of the high-nibble input."""
        auto, res = org_runs["diffusive-async"]
        first = res.output_records(auto.terminal_buffer_name)[0]
        sensor = sensor_input(32)
        weights = weight_matrix(32, seed=1)
        assert np.array_equal(first.value,
                              (sensor & 0xF0) @ weights)
