"""Tests for the deterministic discrete-event executor."""

import math

import numpy as np
import pytest

from repro.anytime.permutations import TreePermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.controller import (AccuracyTarget, AnyOf, DeadlineStop,
                                   EnergyBudget, ManualStop,
                                   VersionCountStop)
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.core.mapstage import MapStage
from repro.core.simexec import SimulatedExecutor
from repro.core.stage import PreciseStage


def chain_automaton(cost_f=60.0, cost_g=40.0):
    """f (iterative, 2 levels) -> g (precise)."""
    b_in = VersionedBuffer("in")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    f = IterativeStage("f", b_f, (b_in,),
                       [AccuracyLevel(lambda x: x // 2 * 2, cost_f / 2),
                        AccuracyLevel(lambda x: x, cost_f)])
    g = PreciseStage("g", b_g, (b_f,), lambda F: F + 1, cost=cost_g)
    return AnytimeAutomaton([f, g], external={"in": 11})


def map_automaton(chunks=8):
    img = np.arange(256, dtype=np.float64).reshape(16, 16)
    b_in = VersionedBuffer("in")
    b_out = VersionedBuffer("out")
    stage = MapStage("m", b_out, (b_in,),
                     lambda idx, im: np.asarray(im).reshape(-1)[idx] + 1,
                     shape=(16, 16), dtype=np.float64,
                     permutation=TreePermutation(), chunks=chunks)
    return AnytimeAutomaton([stage], external={"in": img})


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        results = []
        for _ in range(2):
            auto = map_automaton()
            res = auto.run_simulated(total_cores=4.0)
            results.append([(r.time, r.version, r.final)
                            for r in res.output_records("out")])
        assert results[0] == results[1]

    def test_virtual_time_matches_cost_model(self):
        """Single stage, known shares: completion time is exactly the
        anytime pass cost divided by the share."""
        auto = map_automaton(chunks=4)
        stage = auto.graph.stages[0]
        res = auto.run_simulated(total_cores=2.0,
                                 schedule={"m": 2.0})
        expected = stage.anytime_pass_cost / 2.0
        assert res.duration == pytest.approx(expected)


class TestPipelineSemantics:
    def test_child_processes_latest_version(self):
        """g consumes whichever F version is in the buffer; both the
        approximate and the final pass happen, final last (Figure 7)."""
        auto = chain_automaton()
        res = auto.run_simulated(total_cores=2.0)
        recs = res.output_records("G")
        assert len(recs) >= 2
        assert recs[-1].final
        assert recs[-1].value == 12
        assert recs[0].value == 11  # 11//2*2 + 1

    def test_finality_propagates_through_chain(self):
        auto = chain_automaton()
        res = auto.run_simulated(total_cores=2.0)
        finals = [r.final for r in res.output_records("G")]
        assert finals[-1] and not any(finals[:-1])

    def test_completed_flag(self):
        auto = chain_automaton()
        res = auto.run_simulated(total_cores=2.0)
        assert res.completed and not res.stopped_early


class TestStopConditions:
    def test_deadline_stop(self):
        auto = map_automaton()
        baseline = auto.baseline_duration(4.0)
        res = auto.run_simulated(total_cores=4.0,
                                 stop=DeadlineStop(baseline * 0.5))
        assert res.stopped_early and not res.completed
        assert res.duration <= baseline * 0.75
        # interruption still left a valid whole output in the buffer
        last = res.output_records("out")[-1]
        assert last.value.shape == (16, 16)

    def test_version_count_stop(self):
        auto = map_automaton(chunks=8)
        res = auto.run_simulated(total_cores=4.0,
                                 stop=VersionCountStop(3))
        assert len(res.output_records("out")) == 3

    def test_accuracy_target_stop(self):
        auto = map_automaton()
        ref = auto.precise_output()
        from repro.metrics.snr import snr_db
        stop = AccuracyTarget(lambda v: snr_db(v, ref), target=25.0)
        res = auto.run_simulated(total_cores=4.0, stop=stop)
        assert res.stopped_early or math.isinf(stop.last_score)
        assert stop.last_score >= 25.0

    def test_energy_budget_stop(self):
        auto = map_automaton()
        res = auto.run_simulated(total_cores=4.0,
                                 stop=EnergyBudget(10.0))
        assert res.stopped_early
        # within one chunk's energy of the budget
        assert res.energy <= 10.0 + 256.0

    def test_manual_stop_pre_set(self):
        stop = ManualStop()
        stop.stop()
        auto = map_automaton()
        res = auto.run_simulated(total_cores=4.0, stop=stop)
        assert res.stopped_early
        assert len(res.output_records("out")) == 1

    def test_any_of_combinator(self):
        stop = AnyOf(DeadlineStop(1e12), VersionCountStop(2))
        auto = map_automaton()
        res = auto.run_simulated(total_cores=4.0, stop=stop)
        assert len(res.output_records("out")) == 2

    def test_or_operator(self):
        cond = DeadlineStop(1.0) | VersionCountStop(5)
        assert isinstance(cond, AnyOf)


class TestStopConditionValidation:
    def test_deadline_rejects_negative(self):
        with pytest.raises(ValueError):
            DeadlineStop(-1.0)

    def test_energy_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyBudget(-1.0)

    def test_version_count_rejects_zero(self):
        with pytest.raises(ValueError):
            VersionCountStop(0)

    def test_any_of_rejects_empty(self):
        with pytest.raises(ValueError):
            AnyOf()


class TestExecutorValidation:
    def test_rejects_nonpositive_cores(self):
        auto = chain_automaton()
        with pytest.raises(ValueError, match="positive"):
            SimulatedExecutor(auto.graph, total_cores=0.0)

    def test_rejects_missing_share(self):
        auto = chain_automaton()
        with pytest.raises(ValueError, match="share"):
            SimulatedExecutor(auto.graph, schedule={"f": 1.0})

    def test_explicit_shares_accepted(self):
        auto = chain_automaton()
        res = auto.run_simulated(total_cores=2.0,
                                 schedule={"f": 1.5, "g": 0.5})
        assert res.shares == {"f": 1.5, "g": 0.5}


class TestEnergyAccounting:
    def test_energy_matches_total_work(self):
        """By default a unit of work costs a unit of energy, so a full
        run's energy equals the total anytime work."""
        auto = map_automaton(chunks=4)
        stage = auto.graph.stages[0]
        res = auto.run_simulated(total_cores=4.0)
        assert res.energy == pytest.approx(stage.anytime_pass_cost)

    def test_records_carry_cumulative_energy(self):
        auto = map_automaton(chunks=4)
        res = auto.run_simulated(total_cores=4.0)
        energies = [r.energy for r in res.output_records("out")]
        assert energies == sorted(energies)


class TestWatch:
    def test_unwatched_buffers_drop_values(self):
        auto = chain_automaton()
        res = auto.run_simulated(total_cores=2.0)
        f_recs = res.timeline.for_buffer("F")
        assert f_recs and all(r.value is None for r in f_recs)

    def test_explicit_watch_set(self):
        auto = chain_automaton()
        res = auto.run_simulated(total_cores=2.0, watch={"F", "G"})
        assert all(r.value is not None
                   for r in res.timeline.for_buffer("F"))

    def test_final_values_snapshot(self):
        auto = chain_automaton()
        res = auto.run_simulated(total_cores=2.0)
        assert res.final_values["G"] == 12


class TestSingleUse:
    def test_second_run_rejected(self):
        auto = chain_automaton()
        auto.run_simulated(total_cores=2.0)
        with pytest.raises(RuntimeError, match="already executed"):
            auto.run_simulated(total_cores=2.0)
