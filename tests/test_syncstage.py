"""Tests for synchronous pipelines (paper Figures 8 and 9).

The paper's running example: f generates a string letter by letter
(concatenation is the left-associative ``◊``), g capitalizes it.  In an
asynchronous pipeline g re-capitalizes the whole prefix per version; a
synchronous pipeline feeds g only the *new* letters, so each is
capitalized exactly once.
"""

from typing import Any

import numpy as np
import pytest

from repro.anytime.permutations import SequentialPermutation
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.channel import UpdateChannel
from repro.core.diffusive import DiffusiveStage
from repro.core.stage import PreciseStage
from repro.core.syncstage import SynchronousStage

WORD = "hello anytime automaton"


class LetterStage(DiffusiveStage):
    """``f``: emits WORD one letter at a time (diffusive concatenation)."""

    def __init__(self, output, emit_to=None, count_work=None):
        super().__init__("f", output, (), shape=len(WORD),
                         permutation=SequentialPermutation(),
                         chunks=len(WORD), cost_per_element=1.0,
                         emit_to=emit_to)
        self.count_work = count_work

    def init_state(self, values):
        return {"s": ""}

    def process_chunk(self, state, indices, values):
        letters = "".join(WORD[i] for i in indices.tolist())
        state["s"] += letters
        return letters

    def materialize(self, state, count, values):
        return state["s"]

    def precise(self, input_values):
        return WORD


def _capitalize(text: str, counter: list[int] | None = None) -> str:
    if counter is not None:
        counter[0] += len(text)
    return text.upper()


def build_async(counter):
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    f = LetterStage(b_f)
    g = PreciseStage("g", b_g, (b_f,),
                     lambda s: _capitalize(s, counter),
                     cost=float(len(WORD)))
    return AnytimeAutomaton([f, g], name="async")


def build_sync(counter, capacity=None):
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    channel = UpdateChannel("F", capacity=capacity)
    f = LetterStage(b_f, emit_to=channel)
    g = SynchronousStage(
        "g", b_g, channel,
        initial_fn=lambda: "",
        update_fn=lambda acc, x: acc + _capitalize(x, counter),
        update_cost=lambda x: float(len(x)),
        precise_fn=lambda fv: fv.upper(),
        precise_cost=float(len(WORD)))
    return AnytimeAutomaton([f, g], name="sync")


class TestFigure8And9:
    def test_both_pipelines_reach_the_precise_output(self):
        for build in (build_async, build_sync):
            auto = build([0])
            res = auto.run_simulated(total_cores=2.0)
            final = res.timeline.final_record("G")
            assert final.value == WORD.upper()

    def test_async_repeats_work_sync_does_not(self):
        """The distributive child capitalizes each letter exactly once
        under the synchronous pipeline; asynchronously it re-processes
        the growing prefix."""
        async_counter = [0]
        auto = build_async(async_counter)
        auto.run_simulated(total_cores=2.0)
        sync_counter = [0]
        auto = build_sync(sync_counter)
        auto.run_simulated(total_cores=2.0)
        assert sync_counter[0] == len(WORD)
        assert async_counter[0] > len(WORD)

    def test_sync_consumes_every_update_in_order(self):
        """Skipping updates would corrupt the output; the channel must
        deliver all of them (unlike buffer versions)."""
        auto = build_sync([0])
        res = auto.run_simulated(total_cores=2.0)
        recs = res.output_records("G")
        # one G version per letter, plus the final re-publish
        assert len(recs) == len(WORD) + 1
        lengths = [len(r.value) for r in recs]
        assert lengths[:-1] == list(range(1, len(WORD) + 1))

    def test_bounded_channel_backpressure(self):
        """Capacity 1 (the paper's strict synchronization) still reaches
        the precise output — the producer just stalls."""
        auto = build_sync([0], capacity=1)
        res = auto.run_simulated(total_cores=2.0)
        assert res.completed
        assert res.timeline.final_record("G").value == WORD.upper()

    def test_precise_path_through_graph(self):
        auto = build_sync([0])
        values = auto.graph.run_precise(auto.external)
        assert values["G"] == WORD.upper()


class TestSyncNumeric:
    def test_distributive_dot_product(self):
        """Matrix flavour (paper Figure 10): g(X1 + X2) = g(X1) + g(X2)
        for the dot product over addition."""
        rng = np.random.default_rng(0)
        sensor = rng.integers(0, 256, size=(8, 8)).astype(np.int64)
        weights = rng.integers(-4, 5, size=(8, 8)).astype(np.int64)

        class NibbleStage(DiffusiveStage):
            def __init__(self, output, emit_to):
                super().__init__("f", output, (), shape=2,
                                 permutation=SequentialPermutation(),
                                 chunks=2, cost_per_element=10.0,
                                 emit_to=emit_to)

            def init_state(self, values):
                return {"acc": np.zeros_like(sensor)}

            def process_chunk(self, state, indices, values):
                mask = 0xF0 if indices[0] == 0 else 0x0F
                part = sensor & mask
                state["acc"] = state["acc"] + part
                return part

            def materialize(self, state, count, values):
                return state["acc"].copy()

            def precise(self, input_values):
                return sensor.copy()

        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        ch = UpdateChannel("F")
        f = NibbleStage(b_f, ch)
        g = SynchronousStage(
            "g", b_g, ch,
            initial_fn=lambda: np.zeros_like(sensor),
            update_fn=lambda acc, x: acc + x @ weights,
            update_cost=lambda x: 10.0,
            precise_fn=lambda fv: fv @ weights,
            precise_cost=20.0)
        auto = AnytimeAutomaton([f, g], name="nibbles")
        res = auto.run_simulated(total_cores=2.0)
        final = res.timeline.final_record("G")
        assert np.array_equal(final.value, sensor @ weights)


class TestSyncParentGuard:
    @staticmethod
    def _guard_automaton():
        b_src = VersionedBuffer("src")
        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        ch = UpdateChannel("F")
        # producer of src emits two versions (iterative, non-final first)
        from repro.core.iterative import AccuracyLevel, IterativeStage
        src = IterativeStage(
            "src", b_src, (),
            [AccuracyLevel(lambda: "a", 1.0),
             AccuracyLevel(lambda: "b", 1.0)])

        class Echo(DiffusiveStage):
            def __init__(self):
                super().__init__("f", b_f, (b_src,), shape=1,
                                 permutation=SequentialPermutation(),
                                 chunks=1, cost_per_element=1.0,
                                 emit_to=ch)

            def init_state(self, values):
                return {}

            def process_chunk(self, state, indices, values):
                return values[0]

            def materialize(self, state, count, values):
                return values[0]

            def precise(self, input_values):
                return input_values["src"]

        g = SynchronousStage(
            "g", b_g, ch, initial_fn=lambda: "",
            update_fn=lambda acc, x: acc + x,
            update_cost=lambda x: 1.0,
            precise_fn=lambda fv: fv, precise_cost=1.0)
        return AnytimeAutomaton([src, Echo(), g], name="guard")

    def test_streaming_parent_with_nonfinal_input_fails_run(self):
        """A synchronous parent re-running on a second input version
        would double-emit; the runtime guards against it by failing the
        stage and surfacing the error on the result."""
        res = self._guard_automaton().run_simulated(total_cores=3.0)
        assert not res.completed
        assert res.errors and res.errors[0][0] == "f"
        assert "second input version" in str(res.errors[0][1])

    def test_streaming_parent_guard_raises_under_strict(self):
        with pytest.raises(Exception, match="second input version"):
            self._guard_automaton().run_simulated(total_cores=3.0,
                                                  strict=True)
