"""Tests for loop-perforation schedules (paper III-B1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anytime.perforation import (StrideSchedule, geometric_strides,
                                       perforated_indices)


class TestPerforatedIndices:
    def test_stride_one_is_all_iterations(self):
        assert perforated_indices(10, 1).tolist() == list(range(10))

    def test_stride_skips(self):
        assert perforated_indices(10, 3).tolist() == [0, 3, 6, 9]

    def test_offset(self):
        assert perforated_indices(10, 3, offset=1).tolist() == [1, 4, 7]

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            perforated_indices(10, 0)

    def test_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            perforated_indices(10, 3, offset=3)


class TestGeometricStrides:
    def test_default_ladder(self):
        assert geometric_strides(8) == (8, 4, 2, 1)

    def test_factor_four(self):
        assert geometric_strides(16, factor=4) == (16, 4, 1)

    def test_start_one(self):
        assert geometric_strides(1) == (1,)

    def test_rejects_non_power(self):
        with pytest.raises(ValueError, match="power"):
            geometric_strides(6)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            geometric_strides(8, factor=1)


class TestStrideSchedule:
    def test_valid_schedule(self):
        s = StrideSchedule((8, 4, 2, 1))
        assert s.levels == 4

    def test_rejects_non_decreasing(self):
        with pytest.raises(ValueError, match="decrease"):
            StrideSchedule((4, 4, 1))

    def test_rejects_missing_precise_level(self):
        """The final computation must be the precise one (stride 1)."""
        with pytest.raises(ValueError, match="final stride"):
            StrideSchedule((8, 4, 2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            StrideSchedule(())

    def test_work_per_level(self):
        s = StrideSchedule((4, 2, 1))
        assert [s.work(16, lv) for lv in range(3)] == [4, 8, 16]

    def test_total_and_redundant_work(self):
        """Paper III-B1: iterative perforation re-executes common
        multiples and the entire precise pass."""
        s = StrideSchedule((4, 2, 1))
        assert s.total_work(16) == 28
        assert s.redundant_work(16) == 12

    @given(st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_redundancy_ratio_bounds(self, k, n):
        """A geometric /2 ladder costs at most 2x the precise work."""
        s = StrideSchedule(geometric_strides(2 ** k))
        ratio = s.redundancy_ratio(n)
        # ceil() at each level adds at most one iteration per level
        assert 1.0 <= ratio <= 2.0 + s.levels / max(n, 1)

    def test_level_indices_end_with_full_coverage(self):
        s = StrideSchedule((8, 4, 2, 1))
        assert s.indices(32, 3).tolist() == list(range(32))
