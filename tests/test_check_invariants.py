"""Unit tests for the runtime invariant checker (repro.check.invariants)."""

import json

import numpy as np
import pytest

from repro.apps.registry import get_app
from repro.check import (CheckFailure, Checker, Violation, check_events)
from repro.core.buffer import VersionedBuffer
from repro.core.tracing import InMemorySink, TraceEvent

pytestmark = pytest.mark.check


def _ev(ts, kind, stage=None, target=None, **args):
    return TraceEvent(ts=ts, kind=kind, stage=stage, target=target,
                      args=args)


def _w(ts, version, final=False, stage="s", target="b"):
    return _ev(ts, "buffer.write", stage, target,
               version=version, final=final)


class TestCheckerBasics:
    def test_clean_stream_is_ok(self):
        report = check_events([
            _ev(0.0, "stage.start", "s"),
            _w(0.1, 1), _w(0.2, 2, final=True),
            _ev(0.3, "stage.finish", "s", status="completed"),
        ])
        assert report.ok
        assert report.events == 4
        assert report.kind_counts["buffer.write"] == 2

    def test_version_skip_flagged(self):
        report = check_events([_w(0.0, 1), _w(1.0, 3)])
        assert [v.invariant for v in report.violations] == \
            ["version-order"]

    def test_fail_fast_raises_on_first_violation(self):
        checker = Checker(fail_fast=True)
        checker.emit(_w(0.0, 1))
        with pytest.raises(CheckFailure, match="version-order"):
            checker.emit(_w(1.0, 3))

    def test_raise_if_violations_carries_structured_records(self):
        checker = Checker()
        checker.emit(_w(0.0, 2))
        checker.emit(_w(1.0, 2))
        checker.close()
        with pytest.raises(CheckFailure) as exc:
            checker.raise_if_violations()
        assert all(isinstance(v, Violation)
                   for v in exc.value.violations)

    def test_forward_tees_every_event(self):
        mem = InMemorySink()
        checker = Checker(forward=mem)
        events = [_w(0.0, 1), _w(1.0, 2, final=True)]
        for e in events:
            checker.emit(e)
        checker.close()
        assert mem.events == events
        assert mem.closed

    def test_report_is_json_serializable(self):
        report = check_events([_w(0.0, 1), _w(1.0, 1)])
        payload = json.dumps(report.to_dict())
        assert "version-order" in payload


class TestOwnership:
    def test_foreign_writer_needs_owner_map(self):
        assert check_events([_w(0.0, 1, stage="intruder")]).ok
        report = check_events([_w(0.0, 1, stage="intruder")],
                              owners={"b": "s"})
        assert [v.invariant for v in report.violations] == \
            ["foreign-writer"]

    def test_for_graph_derives_owners(self):
        spec = get_app("dwt53")
        automaton = spec.build(spec.make_input(16, 0))
        checker = Checker.for_graph(automaton.graph)
        assert checker.owners == {s.output.name: s.name
                                  for s in automaton.graph.stages}


class TestAccuracyTolerance:
    def _samples(self, values):
        return [_ev(float(i), "accuracy.sample", "s", "b", accuracy=v)
                for i, v in enumerate(values)]

    def test_disabled_without_tolerance(self):
        assert check_events(self._samples([10.0, 1.0])).ok

    def test_regression_beyond_tolerance_flagged(self):
        report = check_events(self._samples([10.0, 7.0]),
                              tolerance_db=1.0)
        assert [v.invariant for v in report.violations] == \
            ["accuracy-regression"]

    def test_dip_within_tolerance_allowed(self):
        assert check_events(self._samples([10.0, 9.5, 11.0]),
                            tolerance_db=1.0).ok

    def test_per_buffer_override_exempts(self):
        report = check_events(self._samples([10.0, 1.0]),
                              tolerance_db=0.0,
                              tolerances={"b": None})
        assert report.ok


class TestChannels:
    def test_relaxed_mode_defers_totals_to_close(self):
        # out-of-order emit/recv interleaving from threads: per-event
        # causality is not checkable, but totals are
        checker = Checker(strict_order=False)
        checker.emit(_ev(0.0, "channel.recv", "g", "c", queued=0))
        checker.emit(_ev(1.0, "channel.recv", "g", "c", queued=0))
        checker.emit(_ev(2.0, "channel.emit", "f", "c", queued=1))
        checker.close()
        assert [v.invariant for v in checker.violations] == \
            ["channel-causality"]

    def test_strict_mode_flags_at_the_event(self):
        checker = Checker(strict_order=True)
        checker.emit(_ev(0.0, "channel.recv", "g", "c", queued=0))
        assert any(v.invariant == "channel-causality"
                   for v in checker.violations)


class TestPins:
    def test_balanced_pins_ok_and_reported(self):
        report = check_events([
            _ev(0.0, "shm.pin", "w", "b", segment="seg", slot=1),
            _ev(1.0, "shm.unpin", "w", "b", segment="seg", slot=1),
        ])
        assert report.ok
        assert report.stats["outstanding_pins"] == {}

    def test_outstanding_pin_reported_not_flagged(self):
        report = check_events([
            _ev(0.0, "shm.pin", "w", "b", segment="seg", slot=2),
        ])
        assert report.ok
        assert report.stats["outstanding_pins"] == {"seg:2": 1}


class TestValueMutation:
    def test_mutation_after_write_detected(self):
        buffer = VersionedBuffer("b")
        buffer.register_writer("s")
        value = [1, 2]
        version = buffer.write(value, final=True, writer="s")
        checker = Checker(hash_buffers={"b": buffer})
        checker.emit(_w(0.0, version, final=True))
        value[0] = 99
        checker.close()
        assert [v.invariant for v in checker.violations] == \
            ["value-mutated"]

    def test_untouched_value_passes(self):
        buffer = VersionedBuffer("b")
        buffer.register_writer("s")
        version = buffer.write(np.arange(4), final=True, writer="s")
        checker = Checker(hash_buffers={"b": buffer})
        checker.emit(_w(0.0, version, final=True))
        checker.close()
        assert checker.ok


class TestLiveAttachment:
    @pytest.mark.timeout(60)
    def test_simulated_run_is_clean(self):
        spec = get_app("2dconv")
        automaton = spec.build(spec.make_input(16, 0))
        checker = Checker.for_graph(automaton.graph, hash_values=True,
                                    strict_order=True)
        result = automaton.run_simulated(trace=checker,
                                         schedule=spec.schedule)
        checker.close()
        assert result.completed
        checker.raise_if_violations()
        assert checker.report().stats["buffers"] >= 1

    @pytest.mark.timeout(60)
    def test_threaded_run_is_clean(self):
        spec = get_app("dwt53")
        automaton = spec.build(spec.make_input(16, 0))
        checker = Checker.for_graph(automaton.graph, hash_values=True)
        result = automaton.run_threaded(timeout_s=30.0, trace=checker)
        checker.close()
        assert result.completed
        checker.raise_if_violations()
