"""Tests for sampling confidence intervals and warm-start streaming."""

import math

import numpy as np
import pytest

from repro.anytime.permutations import LfsrPermutation
from repro.metrics.confidence import SamplingConfidence, normal_quantile


class TestNormalQuantile:
    def test_known_values(self):
        assert normal_quantile(0.95) == pytest.approx(1.96, abs=0.001)
        assert normal_quantile(0.99) == pytest.approx(2.576, abs=0.001)

    def test_scipy_fallback(self):
        assert normal_quantile(0.5) == pytest.approx(0.6745, abs=0.001)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestSamplingConfidence:
    def test_estimate_is_scaled_partial_sum(self):
        sc = SamplingConfidence(population=100)
        sc.update(np.array([1.0, 2.0, 3.0, 4.0]))
        assert sc.estimate() == pytest.approx(10.0 * 25)

    def test_full_sample_is_exact_with_zero_halfwidth(self):
        data = np.arange(50, dtype=np.float64)
        sc = SamplingConfidence(population=50)
        sc.update(data)
        assert sc.complete
        assert sc.estimate() == pytest.approx(data.sum())
        assert sc.halfwidth() == 0.0
        assert sc.satisfied(1e-9)

    def test_halfwidth_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 100, 10_000)
        order = LfsrPermutation(seed=2).order(len(data))
        sc = SamplingConfidence(population=len(data))
        widths = []
        for cut in (100, 1000, 5000):
            sc.update(data[order[sc.count:cut]])
            widths.append(sc.halfwidth())
        assert widths[0] > widths[1] > widths[2]

    def test_interval_covers_truth(self):
        """~95% coverage over seeds: check a generous majority."""
        rng = np.random.default_rng(7)
        data = rng.gamma(2.0, 10.0, 4096)
        truth = data.sum()
        hits = 0
        trials = 40
        for seed in range(1, trials + 1):
            order = LfsrPermutation(seed=seed).order(len(data))
            sc = SamplingConfidence(population=len(data))
            sc.update(data[order[:256]])
            if abs(sc.estimate() - truth) <= sc.halfwidth(0.95):
                hits += 1
        assert hits >= int(0.80 * trials)

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            SamplingConfidence(10).estimate()

    def test_over_population_rejected(self):
        sc = SamplingConfidence(population=3)
        with pytest.raises(ValueError, match="population"):
            sc.update(np.arange(4.0))

    def test_single_sample_infinite_width(self):
        sc = SamplingConfidence(population=10)
        sc.update(np.array([5.0]))
        assert math.isinf(sc.halfwidth())
        assert not sc.satisfied(0.1)

    def test_satisfied_threshold(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(10, 11, 1000)  # low variance: tight CI fast
        sc = SamplingConfidence(population=1000)
        sc.update(data[:50])
        assert sc.satisfied(relative_error=0.05)
        assert not sc.satisfied(relative_error=1e-6)

    def test_rejects_bad_relative_error(self):
        sc = SamplingConfidence(10)
        with pytest.raises(ValueError):
            sc.satisfied(0.0)


class TestWarmStart:
    def make_frames(self):
        from repro.data.images import bayer_mosaic

        f0 = bayer_mosaic(64, seed=3)
        rng = np.random.default_rng(1)
        f1 = np.clip(f0.astype(np.int64)
                     + rng.integers(-4, 5, f0.shape),
                     0, 255).astype(np.uint8)
        return f0, f1

    def test_warm_start_boosts_first_version(self):
        from repro.apps.debayer import (build_debayer_automaton,
                                        debayer_precise)
        from repro.metrics.snr import snr_db

        f0, f1 = self.make_frames()
        prev = debayer_precise(f0)
        ref1 = debayer_precise(f1)
        firsts = {}
        for warm in (None, prev):
            auto = build_debayer_automaton(f1, chunks=32,
                                           warm_start=warm)
            res = auto.run_simulated(total_cores=8.0)
            firsts[warm is not None] = snr_db(
                res.output_records("rgb")[0].value, ref1)
        assert firsts[True] > firsts[False] + 10.0

    def test_warm_start_final_still_exact(self):
        from repro.apps.debayer import (build_debayer_automaton,
                                        debayer_precise)

        f0, f1 = self.make_frames()
        auto = build_debayer_automaton(f1, chunks=8,
                                       warm_start=debayer_precise(f0))
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("rgb")
        assert np.array_equal(final.value, debayer_precise(f1))

    def test_warm_start_shape_validated(self):
        from repro.apps.conv2d import build_conv2d_automaton
        from repro.data.images import scene_image

        img = scene_image(32, seed=0)
        with pytest.raises(ValueError, match="warm_start"):
            build_conv2d_automaton(
                img, warm_start=np.zeros((8, 8), dtype=np.uint8))

    def test_dissimilar_warm_start_still_converges(self):
        """A *wrong* warm start costs quality early but never
        correctness — the guarantee is content-independent."""
        from repro.apps.conv2d import (build_conv2d_automaton,
                                       conv2d_precise)
        from repro.data.images import scene_image

        img = scene_image(32, seed=5)
        garbage = np.full((32, 32), 255, dtype=np.uint8)
        auto = build_conv2d_automaton(img, chunks=4,
                                      warm_start=garbage)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("filtered")
        assert np.array_equal(final.value, conv2d_precise(img))
