"""Same-key request coalescing (``AnytimeServer`` keyed submissions).

The contract under test: concurrent requests for identical work attach
to one shared automaton run; each subscriber still gets exactly the
answer it would have gotten solo — its own SLO enforced, its sealed
snapshot drawn from the shared run's version ladder (bit-identical to
an uncoalesced run, since the run is the same deterministic
computation) — and one subscriber's cancellation never destroys
another's run.
"""

import time

import numpy as np
import pytest

from repro.apps.registry import get_app
from repro.check.invariants import Checker
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.serve import (SLO, AnytimeServer, SessionState, input_digest,
                         request_key)

pytestmark = [pytest.mark.serve, pytest.mark.timeout(120)]

LEVELS = 12
SLEEP_S = 0.004


def staircase(levels=LEVELS, sleep_s=SLEEP_S, name="work"):
    """One iterative stage: level i sleeps then writes value i+1, so a
    snapshot is valid iff value == version (the test-side oracle)."""
    b_in = VersionedBuffer(f"{name}-in")
    b_out = VersionedBuffer(f"{name}-out")

    def make_level(i):
        def fn(x):
            time.sleep(sleep_s)
            return i + 1
        return AccuracyLevel(fn, 1.0)

    stage = IterativeStage(name, b_out, (b_in,),
                           [make_level(i) for i in range(levels)])
    return AnytimeAutomaton([stage], external={f"{name}-in": 0})


def value_metric(value):
    return float(value)


def assert_valid(snapshot, levels=LEVELS):
    if snapshot.version == 0:
        assert snapshot.value is None
        return
    assert 1 <= snapshot.version <= levels
    assert snapshot.value == snapshot.version


def keyed_server(**kwargs):
    kwargs.setdefault("slots", 1)
    kwargs.setdefault("queue_limit", 16)
    kwargs.setdefault("quantum_s", 5.0)   # no preemption noise
    kwargs.setdefault("tick_s", 0.002)
    return AnytimeServer(**kwargs)


class TestSubscriberSLOs:
    def test_two_subscribers_different_slos_both_valid(self):
        """A target-dB follower detaches early with a valid sealed
        snapshot; the no-target primary runs to the final version."""
        with keyed_server() as server:
            blocker = server.submit(staircase, SLO(deadline_s=30.0),
                                    name="blocker")
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="a", key="k")
            b = server.submit(staircase, SLO(deadline_s=30.0,
                                             target_db=5.0),
                              metric=value_metric, name="b", key="k")
            ra = a.result(timeout_s=60.0)
            rb = b.result(timeout_s=60.0)
            blocker.result(timeout_s=60.0)
        assert ra.state is SessionState.COMPLETED
        assert rb.state is SessionState.COMPLETED
        assert rb.coalesced and not ra.coalesced
        # the primary saw the whole run; the follower left at its target
        assert ra.snapshot.version == LEVELS and ra.snapshot.final
        assert rb.snapshot.version >= 5
        assert rb.slo_met
        assert_valid(ra.snapshot)
        assert_valid(rb.snapshot)

    def test_deadline_follower_gets_pinned_valid_snapshot(self):
        """A follower with a short deadline detaches mid-run with a
        sealed snapshot while the shared run keeps going."""
        with keyed_server() as server:
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="a", key="k")
            b = server.submit(staircase,
                              SLO(deadline_s=LEVELS * SLEEP_S / 3),
                              metric=value_metric, name="b", key="k")
            rb = b.result(timeout_s=60.0)
            ra = a.result(timeout_s=60.0)
        assert ra.state is SessionState.COMPLETED
        assert rb.state is SessionState.COMPLETED
        assert rb.coalesced and rb.interrupted
        assert rb.snapshot.version < LEVELS
        assert_valid(ra.snapshot)
        assert_valid(rb.snapshot)
        assert ra.snapshot.version == LEVELS

    def test_followers_marked_coalesced_in_stats(self):
        with keyed_server() as server:
            blocker = server.submit(staircase, SLO(deadline_s=30.0),
                                    name="blocker")
            sessions = [server.submit(staircase, SLO(deadline_s=30.0),
                                      metric=value_metric,
                                      name=f"s{i}", key="k")
                        for i in range(4)]
            for s in sessions + [blocker]:
                s.result(timeout_s=60.0)
            stats = server.stats()
        assert stats["coalesced"] == 3
        coalesced = [s.result(0.0).coalesced for s in sessions]
        assert coalesced.count(True) == 3


class TestBitIdentity:
    def test_coalesced_final_bit_identical_to_solo_run(self):
        """Whole-run subscribers on a real app get the same bits a solo
        uncoalesced run publishes."""
        spec = get_app("dwt53")
        image = spec.make_input(16, 3)
        solo = spec.build(image)
        solo_result = solo.run_threaded(timeout_s=60.0)
        assert solo_result.completed
        solo_final = solo_result.output_records(
            solo.terminal_buffer_name)[-1]
        assert solo_final.final
        key = request_key("dwt53", input_digest("dwt53", image))

        with keyed_server(slots=2) as server:
            blocker = server.submit(staircase, SLO(deadline_s=30.0),
                                    name="blocker")
            a = server.submit(lambda: spec.build(image),
                              SLO(deadline_s=30.0), name="a", key=key)
            b = server.submit(lambda: spec.build(image),
                              SLO(deadline_s=30.0), name="b", key=key)
            ra = a.result(timeout_s=60.0)
            rb = b.result(timeout_s=60.0)
            blocker.result(timeout_s=60.0)
        assert ra.state is SessionState.COMPLETED
        assert rb.state is SessionState.COMPLETED
        assert rb.coalesced
        for r in (ra, rb):
            assert r.snapshot.final
            assert r.snapshot.version == solo_final.version
            assert np.array_equal(r.snapshot.value, solo_final.value)

    def test_mid_run_detach_matches_solo_version_ladder(self):
        """A follower's pinned snapshot must sit *on* the solo run's
        version ladder — same value at the same version, bit for bit."""
        spec = get_app("dwt53")
        image = spec.make_input(16, 5)
        solo = spec.build(image)
        solo_result = solo.run_threaded(timeout_s=60.0)
        assert solo_result.completed
        ladder = {r.version: r.value
                  for r in solo_result.output_records(
                      solo.terminal_buffer_name)}
        key = request_key("dwt53", input_digest("dwt53", image))
        metric = spec.metric
        reference = image

        with keyed_server() as server:
            blocker = server.submit(staircase, SLO(deadline_s=30.0),
                                    name="blocker")
            a = server.submit(lambda: spec.build(image),
                              SLO(deadline_s=30.0),
                              metric=lambda v: metric(v, reference),
                              name="a", key=key)
            b = server.submit(lambda: spec.build(image),
                              SLO(deadline_s=30.0, target_db=5.0),
                              metric=lambda v: metric(v, reference),
                              name="b", key=key)
            ra = a.result(timeout_s=60.0)
            rb = b.result(timeout_s=60.0)
            blocker.result(timeout_s=60.0)
        assert rb.state is SessionState.COMPLETED and rb.coalesced
        assert rb.snapshot.version in ladder
        assert np.array_equal(rb.snapshot.value,
                              ladder[rb.snapshot.version])
        assert ra.snapshot.final
        assert np.array_equal(ra.snapshot.value, ladder[max(ladder)])


class TestCancelIsolation:
    def test_follower_cancel_leaves_primary_running(self):
        with keyed_server() as server:
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="a", key="k")
            b = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="b", key="k")
            time.sleep(4 * SLEEP_S)
            b.cancel()
            rb = b.result(timeout_s=60.0)
            ra = a.result(timeout_s=60.0)
        assert rb.state is SessionState.CANCELLED
        assert_valid(rb.snapshot)
        assert ra.state is SessionState.COMPLETED
        assert ra.snapshot.version == LEVELS and ra.snapshot.final

    def test_primary_cancel_promotes_follower(self):
        """Cancelling the session that launched the run must not kill
        the run for its surviving subscriber."""
        with keyed_server() as server:
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="a", key="k")
            b = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="b", key="k")
            time.sleep(4 * SLEEP_S)
            a.cancel()
            ra = a.result(timeout_s=60.0)
            rb = b.result(timeout_s=60.0)
            stats = server.stats()
        assert ra.state is SessionState.CANCELLED
        assert_valid(ra.snapshot)
        assert rb.state is SessionState.COMPLETED
        assert rb.snapshot.version == LEVELS and rb.snapshot.final
        assert stats["promotions"] >= 1

    def test_queued_primary_cancel_hands_queue_slot_to_follower(self):
        with keyed_server() as server:
            blocker = server.submit(staircase, SLO(deadline_s=30.0),
                                    name="blocker")
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="a", key="k")
            b = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="b", key="k")
            a.cancel()
            ra = a.result(timeout_s=60.0)
            rb = b.result(timeout_s=60.0)
            blocker.result(timeout_s=60.0)
        assert ra.state is SessionState.CANCELLED
        assert rb.state is SessionState.COMPLETED
        assert rb.snapshot.version == LEVELS


class TestMemo:
    def test_recent_final_answer_served_from_memo(self):
        with keyed_server(memo_ttl_s=30.0) as server:
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="a", key="k")
            ra = a.result(timeout_s=60.0)
            b = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="b", key="k")
            rb = b.result(timeout_s=60.0)
            stats = server.stats()
        assert ra.snapshot.final and not ra.memo_hit
        assert rb.memo_hit
        assert rb.state is SessionState.COMPLETED
        assert rb.snapshot.version == ra.snapshot.version
        assert rb.snapshot.value == ra.snapshot.value
        assert stats["memo_hits"] == 1

    def test_expired_memo_entry_reruns(self):
        with keyed_server(memo_ttl_s=0.05) as server:
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="a", key="k")
            a.result(timeout_s=60.0)
            time.sleep(0.2)
            b = server.submit(staircase, SLO(deadline_s=30.0),
                              metric=value_metric, name="b", key="k")
            rb = b.result(timeout_s=60.0)
        assert not rb.memo_hit
        assert rb.state is SessionState.COMPLETED

    def test_memo_disabled_by_default(self):
        with keyed_server() as server:
            a = server.submit(staircase, SLO(deadline_s=30.0),
                              name="a", key="k")
            a.result(timeout_s=60.0)
            b = server.submit(staircase, SLO(deadline_s=30.0),
                              name="b", key="k")
            rb = b.result(timeout_s=60.0)
        assert not rb.memo_hit


class TestCheckerUnderCoalescing:
    def test_coalescing_server_trace_has_zero_violations(self):
        """Acceptance: a Checker attached to a coalescing server sees no
        invariant violations — sharing runs must not bend the model."""
        checker = Checker()
        with keyed_server(trace=checker, memo_ttl_s=30.0) as server:
            sessions = []
            for round_no in range(2):
                for i in range(3):
                    # unique stage/buffer names per key so the checker
                    # tracks each shared run's ladder independently
                    name = f"app{round_no}"
                    sessions.append(server.submit(
                        (lambda n=name: staircase(name=n)),
                        SLO(deadline_s=30.0), metric=value_metric,
                        name=f"{name}-{i}", key=name))
            results = [s.result(timeout_s=60.0) for s in sessions]
            stats = server.stats()
        checker.close()
        report = checker.report()
        assert report.ok, report.violations
        assert all(r.state is SessionState.COMPLETED for r in results)
        assert stats["coalesced"] >= 2


class TestDigest:
    def test_digest_is_content_addressed(self):
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        same = input_digest("2dconv", img.copy(), size=8, seed=0)
        assert input_digest("2dconv", img, size=8, seed=0) == same
        assert input_digest("2dconv", img, size=8, seed=1) != same
        assert input_digest("dwt53", img, size=8, seed=0) != same
        assert input_digest("2dconv", img + 1, size=8, seed=0) != same

    def test_digest_distinguishes_dtype_and_shape(self):
        img = np.zeros(16, dtype=np.uint8)
        assert input_digest("a", img) != \
            input_digest("a", img.astype(np.uint16))
        assert input_digest("a", img.reshape(4, 4)) != \
            input_digest("a", img)

    def test_digest_skips_none_params(self):
        img = np.zeros(4, dtype=np.uint8)
        assert input_digest("a", img, size=4, seed=None) == \
            input_digest("a", img, size=4)

    def test_request_key_prefixes_app(self):
        digest = input_digest("dwt53", np.zeros(4, dtype=np.uint8))
        key = request_key("dwt53", digest)
        assert key.startswith("dwt53:")
        assert key == f"dwt53:{digest[:16]}"
