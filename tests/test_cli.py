"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.apps.registry import APP_REGISTRY, get_app
from repro.cli import main
from repro.data.pnm import read_pnm


class TestRegistry:
    def test_all_five_apps_registered(self):
        assert sorted(APP_REGISTRY) == ["2dconv", "debayer", "dwt53",
                                        "histeq", "kmeans"]

    def test_get_unknown_lists_options(self):
        with pytest.raises(KeyError, match="known"):
            get_app("fft")

    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    def test_specs_are_runnable(self, name):
        spec = get_app(name)
        image = spec.make_input(32, 0)
        automaton = spec.build(image)
        reference = (spec.reference(image)
                     if spec.reference_kind != "input" else image)
        result = automaton.run_simulated(total_cores=8.0,
                                         schedule=spec.schedule)
        final = result.timeline.final_record(
            automaton.terminal_buffer_name)
        assert spec.metric(final.value, reference) == float("inf")
        if spec.to_image is not None:
            img = spec.to_image(final.value)
            assert np.asarray(img).dtype == np.uint8


class TestCli:
    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in APP_REGISTRY:
            assert name in out

    def test_run_completes(self, capsys):
        assert main(["run", "2dconv", "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "inf" in out

    def test_run_with_deadline(self, capsys):
        assert main(["run", "dwt53", "--size", "32",
                     "--deadline", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "stopped early" in out

    def test_run_with_target_snr(self, capsys):
        assert main(["run", "debayer", "--size", "32",
                     "--target-snr", "12"]) == 0
        out = capsys.readouterr().out
        assert "stopped early" in out or "completed" in out

    def test_run_with_energy_budget(self, capsys):
        assert main(["run", "2dconv", "--size", "32",
                     "--energy-budget", "0.5"]) == 0
        capsys.readouterr()

    def test_run_contract_requires_deadline(self, capsys):
        assert main(["run", "dwt53", "--size", "32",
                     "--contract"]) == 2

    def test_run_contract(self, capsys):
        assert main(["run", "dwt53", "--size", "32",
                     "--deadline", "0.7", "--contract"]) == 0
        out = capsys.readouterr().out
        assert "contract plan" in out

    def test_run_save_image(self, tmp_path, capsys):
        path = tmp_path / "out.ppm"
        assert main(["run", "kmeans", "--size", "32",
                     "--save", str(path)]) == 0
        capsys.readouterr()
        assert read_pnm(path).shape == (32, 32, 3)

    def test_run_rejects_unknown_app(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "unknown-app"])
        capsys.readouterr()

    def test_run_trace_chrome(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["run", "2dconv", "--size", "32",
                     "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        import json
        doc = json.load(open(path))
        events = doc["traceEvents"]
        assert events
        kinds = {e.get("ph") for e in events}
        assert {"B", "E"} <= kinds

    def test_run_trace_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["run", "2dconv", "--size", "32",
                     "--trace", str(path),
                     "--trace-format", "jsonl"]) == 0
        capsys.readouterr()
        import json
        events = [json.loads(line)
                  for line in open(path).read().splitlines()]
        assert any(e["kind"] == "accuracy.sample" for e in events)

    def test_run_trace_rejected_in_contract_mode(self, tmp_path,
                                                 capsys):
        assert main(["run", "dwt53", "--size", "32",
                     "--deadline", "0.7", "--contract",
                     "--trace", str(tmp_path / "t.json")]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_figures_selected(self, capsys):
        assert main(["figures", "fig10_organizations"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out

    def test_figures_unknown_name(self, capsys):
        assert main(["figures", "fig99_nonsense"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestExecutorFlag:
    @pytest.mark.parametrize("executor", ["threaded", "process"])
    def test_run_wall_clock_executor(self, executor, capsys):
        assert main(["run", "2dconv", "--size", "32",
                     "--executor", executor,
                     "--timeout-s", "120"]) == 0
        out = capsys.readouterr().out
        assert f"({executor} executor)" in out
        assert "completed" in out
        assert "inf" in out            # reaches the precise output

    def test_run_simulated_rejects_timeout(self, capsys):
        assert main(["run", "2dconv", "--size", "32",
                     "--timeout-s", "5"]) == 2
        assert "--timeout-s" in capsys.readouterr().err

    @pytest.mark.parametrize("flags", [["--deadline", "0.5"],
                                       ["--dynamic"],
                                       ["--contract"]])
    def test_wall_clock_rejects_virtual_time_flags(self, flags, capsys):
        assert main(["run", "2dconv", "--size", "32",
                     "--executor", "process"] + flags) == 2
        assert flags[0] in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_backends.json"
        assert main(["bench", "--size", "32",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "execution backends" in out
        doc = json.load(open(path))
        assert doc["size"] == 32
        for fig in ("fig11_conv2d", "fig15_kmeans"):
            entry = doc["figures"][fig]
            for backend in ("threaded", "process"):
                row = entry[backend]
                assert row["wall_s"] > 0
                assert row["t90_s"] is not None
                assert row["completed"] is True
            assert entry["process_vs_threaded_t90"] > 0

    def test_bench_env_var_path(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(path))
        assert main(["bench", "--size", "32",
                     "--backends", "threaded"]) == 0
        capsys.readouterr()
        assert path.exists()

    def test_bench_rejects_unknown_backend(self, capsys):
        assert main(["bench", "--backends", "simulated"]) == 2
        assert "unknown backend" in capsys.readouterr().err


def _fake_plane_doc(rpv=0.2, reduction=5.0, vps=100.0):
    """A minimal BENCH_plane.json document for CLI plumbing tests."""
    row = {"lease_k": 8, "completed": True, "versions": 32,
           "wall_s": 0.32, "versions_per_s": vps, "round_trips": 6,
           "round_trips_per_version": rpv,
           "snapshot_latency_s": 0.001, "snapshot_polls": 10}
    sync = dict(row, lease_k=1, round_trips=33,
                round_trips_per_version=rpv * reduction)
    return {"size": 32, "cpu_count": 1, "lease_k": 8,
            "apps": {"2dconv": {"process": {
                "sync": sync, "leased": row,
                "round_trip_reduction": reduction}}}}


class TestBenchJsonFallback:
    """All three bench flavors share one path chain:
    ``--json`` > ``$REPRO_BENCH_JSON`` > ``BENCH_<flavor>.json``."""

    @pytest.fixture()
    def fake_serve(self, monkeypatch):
        from repro.serve import bench as serve_bench

        doc = {"app": "2dconv", "slots": 1, "executor": "threaded",
               "queue_limit": 2, "policy": "fair", "sweep": []}
        monkeypatch.setattr(serve_bench, "run_serve_bench",
                            lambda **kw: doc)
        return doc

    @pytest.fixture()
    def fake_plane(self, monkeypatch):
        from repro.bench import plane

        doc = _fake_plane_doc()
        monkeypatch.setattr(plane, "data_plane_profiles",
                            lambda **kw: doc)
        return doc

    def test_backends_default_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--size", "32",
                     "--backends", "threaded"]) == 0
        capsys.readouterr()
        assert (tmp_path / "BENCH_backends.json").exists()

    def test_serve_default_path(self, tmp_path, capsys, monkeypatch,
                                fake_serve):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "serve"]) == 0
        capsys.readouterr()
        assert (tmp_path / "BENCH_serve.json").exists()

    def test_serve_env_var_path(self, tmp_path, capsys, monkeypatch,
                                fake_serve):
        path = tmp_path / "serve-env.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(path))
        assert main(["bench", "serve"]) == 0
        capsys.readouterr()
        assert path.exists()

    def test_plane_default_path(self, tmp_path, capsys, monkeypatch,
                                fake_plane):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "plane"]) == 0
        out = capsys.readouterr().out
        assert "round-trip reduction" in out
        assert (tmp_path / "BENCH_plane.json").exists()

    def test_plane_env_var_path(self, tmp_path, capsys, monkeypatch,
                                fake_plane):
        path = tmp_path / "plane-env.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(path))
        assert main(["bench", "plane"]) == 0
        capsys.readouterr()
        assert path.exists()

    def test_explicit_json_beats_env_var(self, tmp_path, capsys,
                                         monkeypatch, fake_plane):
        env = tmp_path / "env.json"
        flag = tmp_path / "flag.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(env))
        assert main(["bench", "plane", "--json", str(flag)]) == 0
        capsys.readouterr()
        assert flag.exists() and not env.exists()


class TestBenchPlaneGate:
    def test_gate_passes_against_self(self, tmp_path, capsys,
                                      monkeypatch):
        import json

        from repro.bench import plane

        monkeypatch.setattr(plane, "data_plane_profiles",
                            lambda **kw: _fake_plane_doc())
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_fake_plane_doc()))
        assert main(["bench", "plane",
                     "--json", str(tmp_path / "fresh.json"),
                     "--check-against", str(baseline)]) == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, tmp_path, capsys,
                                      monkeypatch):
        import json

        from repro.bench import plane

        # fresh run is 2x chattier and the lease win halved vs baseline
        monkeypatch.setattr(
            plane, "data_plane_profiles",
            lambda **kw: _fake_plane_doc(rpv=0.4, reduction=2.5))
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_fake_plane_doc()))
        assert main(["bench", "plane",
                     "--json", str(tmp_path / "fresh.json"),
                     "--check-against", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "perf gate FAILED" in out
        assert "round-trips/version regressed" in out
        assert "round-trip reduction fell" in out


@pytest.mark.check
class TestCheckCommand:
    @pytest.mark.timeout(120)
    def test_check_self_test(self, tmp_path, capsys):
        import json

        path = tmp_path / "selftest.json"
        assert main(["check", "--self-test",
                     "--executors", "simulated",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "violation cases caught" in out
        doc = json.load(open(path))
        assert doc["ok"] is True

    @pytest.mark.timeout(120)
    def test_check_differential_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "conformance.json"
        assert main(["check", "dwt53", "--size", "16",
                     "--executors", "simulated,threaded",
                     "--no-serve", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        doc = json.load(open(path))
        assert doc["ok"] is True
        assert doc["apps"][0]["app"] == "dwt53"

    def test_check_rejects_unknown_app(self, capsys):
        assert main(["check", "fft", "--no-serve"]) == 2
        assert "unknown app" in capsys.readouterr().err

    @pytest.mark.slow
    @pytest.mark.timeout(300)
    def test_check_fuzz_smoke(self, tmp_path, capsys, monkeypatch):
        pytest.importorskip("hypothesis")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--fuzz", "--max-examples", "5"]) == 0
        assert "no falsifying automaton" in capsys.readouterr().out

    @pytest.mark.timeout(120)
    def test_check_replay_round_trip(self, tmp_path, capsys):
        from repro.check.fuzz import save_spec

        spec = {"format": 1, "cores": 4, "faults": None,
                "stop_after": None, "data": list(range(16)),
                "stages": [{"kind": 0, "op": 0, "cost": 5,
                            "inputs": [0], "chunks": 1,
                            "perm": "tree", "sync": False}]}
        path = tmp_path / "seed.json"
        save_spec(spec, str(path))
        assert main(["check", "--replay", str(path)]) == 0
        assert "passed" in capsys.readouterr().out
