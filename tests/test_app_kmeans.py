"""Tests for the kmeans application (paper Figures 15, 18)."""

import math

import numpy as np
import pytest

from repro.apps.kmeans import (assign_pixels, build_kmeans_automaton,
                               clustered_image_metric, initial_centroids,
                               kmeans_precise)
from repro.core.scheduling import final_stage_shares


class TestInitialCentroids:
    def test_shape_and_determinism(self, small_rgb):
        c = initial_centroids(small_rgb, 5)
        assert c.shape == (5, 3)
        assert np.array_equal(c, initial_centroids(small_rgb, 5))

    def test_ordered_by_luma(self, small_rgb):
        c = initial_centroids(small_rgb, 4)
        luma = c @ np.array([0.299, 0.587, 0.114])
        assert (np.diff(luma) >= -1e-9).all()

    def test_rejects_bad_k(self, small_rgb):
        with pytest.raises(ValueError):
            initial_centroids(small_rgb, 0)


class TestAssign:
    def test_nearest_centroid_chosen(self):
        centroids = np.array([[0.0, 0, 0], [100.0, 100, 100]])
        pixels = np.array([[10, 10, 10], [90, 95, 99]])
        assert assign_pixels(pixels, centroids).tolist() == [0, 1]

    def test_assignment_minimizes_distance(self, small_rgb, rng):
        centroids = rng.uniform(0, 255, (4, 3))
        pixels = small_rgb.reshape(-1, 3)[:50]
        labels = assign_pixels(pixels, centroids)
        d2 = ((pixels[:, None, :].astype(float)
               - centroids[None]) ** 2).sum(axis=2)
        assert np.array_equal(labels, np.argmin(d2, axis=1))


class TestPrecise:
    def test_output_is_palette_image(self, small_rgb):
        out = kmeans_precise(small_rgb, k=4)
        assert out.shape == small_rgb.shape and out.dtype == np.uint8
        colours = {tuple(c) for c in out.reshape(-1, 3).tolist()}
        assert len(colours) <= 4

    def test_more_epochs_tighter_clusters(self, small_rgb):
        """Extra epochs never increase the within-cluster error."""
        def sse(img, k, epochs):
            out = kmeans_precise(img, k=k, epochs=epochs)
            return ((out.astype(float)
                     - img.astype(float)) ** 2).sum()

        assert sse(small_rgb, 4, 3) <= sse(small_rgb, 4, 1) * 1.05


class TestAutomaton:
    def test_two_stage_structure(self, small_rgb):
        auto = build_kmeans_automaton(small_rgb, k=4)
        names = [s.name for s in auto.graph.stages]
        assert names == ["assign1", "reduce1"]
        assert auto.graph.stages[0].anytime
        assert not auto.graph.stages[1].anytime

    def test_final_output_matches_precise(self, small_rgb):
        auto = build_kmeans_automaton(small_rgb, k=4, chunks=8)
        ref = kmeans_precise(small_rgb, k=4)
        assert np.array_equal(auto.precise_output()["image"], ref)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("clustered1")
        assert np.array_equal(final.value["image"], ref)

    def test_profile_monotone_to_inf(self, small_rgb):
        auto = build_kmeans_automaton(small_rgb, k=4, chunks=8)
        res = auto.run_simulated(total_cores=8.0,
                                 schedule=final_stage_shares)
        prof = auto.profile(res, total_cores=8.0,
                            metric=clustered_image_metric)
        assert prof.is_monotonic(3.0)
        assert math.isinf(prof.final_snr_db)

    def test_intermediate_centroids_valid(self, small_rgb):
        auto = build_kmeans_automaton(small_rgb, k=4, chunks=8)
        res = auto.run_simulated(total_cores=8.0)
        for rec in res.output_records("clustered1"):
            c = rec.value["centroids"]
            assert c.shape == (4, 3)
            assert np.isfinite(c).all()
            assert (c >= 0).all() and (c <= 255).all()

    def test_multi_epoch_chain(self, small_rgb):
        auto = build_kmeans_automaton(small_rgb, k=4, epochs=2,
                                      chunks=4)
        names = [s.name for s in auto.graph.stages]
        assert names == ["assign1", "reduce1", "centroids1",
                         "assign2", "reduce2"]
        ref = kmeans_precise(small_rgb, k=4, epochs=2)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("clustered2")
        assert np.array_equal(final.value["image"], ref)

    def test_rejects_bad_epochs(self, small_rgb):
        with pytest.raises(ValueError):
            build_kmeans_automaton(small_rgb, epochs=0)

    def test_empty_cluster_keeps_previous_centroid(self):
        """An image with one colour leaves k-1 clusters empty; their
        centroids must survive the reduce unchanged."""
        img = np.full((8, 8, 3), 200, dtype=np.uint8)
        auto = build_kmeans_automaton(img, k=3, chunks=2)
        res = auto.run_simulated(total_cores=4.0)
        final = res.timeline.final_record("clustered1")
        assert np.isfinite(final.value["centroids"]).all()
