"""Tests for contract-mode execution (paper Section II-B)."""

import math

import numpy as np
import pytest

from repro.apps.conv2d import build_conv2d_automaton, conv2d_precise
from repro.apps.dwt53 import (build_dwt53_automaton,
                              reconstruction_metric)
from repro.core.contract import (ContractPlan, plan_contract,
                                 run_contract)
from repro.data.images import scene_image
from repro.metrics.snr import snr_db


@pytest.fixture(scope="module")
def image():
    return scene_image(64, seed=7)


class TestPlanner:
    def test_generous_budget_plans_precise(self, image):
        plan = plan_contract(build_dwt53_automaton(image), 10.0)
        assert plan.achieves_precise
        assert plan.iterative_levels["forward"] == 3   # stride 1

    def test_tight_budget_trims_iterative_stage(self, image):
        """A budget for roughly half the baseline picks an intermediate
        stride instead of the precise pass."""
        plan = plan_contract(build_dwt53_automaton(image), 0.5)
        assert not plan.achieves_precise
        assert "forward" in plan.trimmed_stages
        assert plan.iterative_levels["forward"] < 3

    def test_tiny_budget_still_plans_coarsest_level(self, image):
        plan = plan_contract(build_dwt53_automaton(image), 0.01)
        assert plan.iterative_levels["forward"] == 0

    def test_diffusive_stage_gets_element_prefix(self, image):
        plan = plan_contract(build_conv2d_automaton(image), 0.5)
        limit = plan.element_limits["conv"]
        assert limit is not None
        assert 0 < limit < image.size

    def test_diffusive_full_budget_runs_everything(self, image):
        plan = plan_contract(build_conv2d_automaton(image), 5.0)
        assert plan.element_limits["conv"] is None
        assert plan.achieves_precise

    def test_planned_work_within_reasonable_bounds(self, image):
        auto = build_conv2d_automaton(image)
        plan = plan_contract(auto, 0.5)
        # the plan may not exceed the budget by more than one level /
        # chunk of slack
        assert plan.planned_work <= plan.budget_work * 1.05

    def test_rejects_nonpositive_deadline(self, image):
        with pytest.raises(ValueError):
            plan_contract(build_conv2d_automaton(image), 0.0)

    def test_mandatory_work_must_fit(self, image):
        """histeq's non-anytime stages alone exceed a near-zero budget."""
        from repro.apps.histeq import build_histeq_automaton
        with pytest.raises(ValueError, match="non-anytime"):
            plan_contract(build_histeq_automaton(image), 1e-6)


class TestContractRun:
    def test_contract_beats_interruptible_at_deadline(self, image):
        """The contract advantage: with the deadline known up front, an
        iterative application skips its coarse passes and lands a better
        output than interruptible execution stopped at the same time."""
        from repro.core.controller import DeadlineStop

        fraction = 0.6
        metric = reconstruction_metric()
        # interruptible: run, stop at the deadline
        inter = build_dwt53_automaton(image)
        deadline = inter.baseline_duration(32.0) * fraction
        res = inter.run_simulated(total_cores=32.0,
                                  stop=DeadlineStop(deadline))
        records = res.output_records("coeffs")
        inter_snr = metric(records[-1].value, image) if records \
            else -math.inf
        # contract: plan for the deadline, run the single chosen level
        plan, cres, cauto = run_contract(
            lambda: build_dwt53_automaton(image), fraction,
            total_cores=32.0)
        crecords = cres.output_records("coeffs")
        contract_snr = metric(crecords[-1].value, image)
        assert contract_snr >= inter_snr

    def test_contract_output_is_single_version(self, image):
        plan, res, auto = run_contract(
            lambda: build_dwt53_automaton(image), 0.5,
            total_cores=32.0)
        records = res.output_records("coeffs")
        assert len(records) == 1, \
            "a contract run trades interruptibility away"
        assert records[0].final

    def test_contract_respects_the_budget(self, image):
        plan, res, auto = run_contract(
            lambda: build_dwt53_automaton(image), 0.5,
            total_cores=32.0)
        budget_time = plan.budget_work / 32.0
        assert res.duration <= budget_time * 1.05

    def test_contract_map_stage_output_valid(self, image):
        plan, res, auto = run_contract(
            lambda: build_conv2d_automaton(image, chunks=4), 0.4,
            total_cores=32.0)
        final = res.timeline.final_record("filtered")
        assert final.value.shape == image.shape
        ref = conv2d_precise(image)
        assert snr_db(final.value, ref) > 10.0

    def test_generous_contract_is_bit_exact(self, image):
        plan, res, auto = run_contract(
            lambda: build_conv2d_automaton(image, chunks=4), 5.0,
            total_cores=32.0)
        assert plan.achieves_precise
        final = res.timeline.final_record("filtered")
        assert np.array_equal(final.value, conv2d_precise(image))


class TestPlanDataclass:
    def test_achieves_precise_logic(self):
        plan = ContractPlan(budget_work=100.0)
        assert plan.achieves_precise
        plan.element_limits["m"] = 10
        assert not plan.achieves_precise
        plan.element_limits["m"] = None
        plan.trimmed_stages.add("f")
        assert not plan.achieves_precise
