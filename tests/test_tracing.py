"""Observability layer: trace sinks, event streams, executor hooks.

Three layers under test: the sinks themselves (contract + file
formats), the events the executors emit (kinds, pairing, ordering,
accuracy samples), and the per-stage counters surfaced on
:class:`StageReport`.  The threaded-vs-simulated comparison pins the
promise that both executors describe the *same* execution shape.
"""

import io
import json
import math
import threading
import time

import numpy as np
import pytest

from repro.anytime.permutations import TreePermutation
from repro.apps.pipeline_demo import build_organization
from repro.core.automaton import AnytimeAutomaton
from repro.core.buffer import VersionedBuffer
from repro.core.channel import UpdateChannel
from repro.core.executor import ThreadedExecutor
from repro.core.faults import FaultInjector, FaultPolicy, StageReport
from repro.core.graph import AutomatonGraph
from repro.core.iterative import AccuracyLevel, IterativeStage
from repro.core.mapstage import MapStage
from repro.core.stage import Emit, PreciseStage, Write
from repro.core.tracing import (ChromeTraceSink, InMemorySink, JsonlSink,
                                NullSink, TraceEvent, TraceSink,
                                active_sink, make_sink)
from repro.metrics.snr import snr_db

pytestmark = pytest.mark.timeout(60)


def map_automaton(chunks=8):
    img = np.arange(64, dtype=np.float64).reshape(8, 8)
    b_in = VersionedBuffer("in")
    b_out = VersionedBuffer("out")
    stage = MapStage("m", b_out, (b_in,),
                     lambda idx, im: np.asarray(im).reshape(-1)[idx] * 3,
                     shape=(8, 8), dtype=np.float64,
                     permutation=TreePermutation(), chunks=chunks)
    return AnytimeAutomaton([stage], external={"in": img}), img * 3


def pipeline_automaton():
    """f (iterative, 2 versions) -> g (precise): in -> F -> G."""
    b_in = VersionedBuffer("in")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    f = IterativeStage("f", b_f, (b_in,),
                       [AccuracyLevel(lambda x: x // 2, 1.0),
                        AccuracyLevel(lambda x: x, 1.0)])
    g = PreciseStage("g", b_g, (b_f,), lambda F: F * 10, cost=1.0)
    return AnytimeAutomaton([f, g], external={"in": 9})


class TestSinkContracts:
    def test_null_sink_is_disabled(self):
        sink = NullSink()
        assert sink.enabled is False
        assert active_sink(sink) is None
        sink.emit(TraceEvent(0.0, "stage.start"))   # harmless
        sink.close()

    def test_active_sink_passthrough(self):
        mem = InMemorySink()
        assert active_sink(mem) is mem
        assert active_sink(None) is None

    def test_all_sinks_satisfy_protocol(self, tmp_path):
        sinks = [NullSink(), InMemorySink(),
                 JsonlSink(io.StringIO()),
                 ChromeTraceSink(io.StringIO())]
        for sink in sinks:
            assert isinstance(sink, TraceSink)

    def test_event_to_dict_drops_empty_fields(self):
        e = TraceEvent(1.5, "buffer.write")
        assert e.to_dict() == {"ts": 1.5, "kind": "buffer.write"}
        e = TraceEvent(2.0, "buffer.write", stage="s", target="b",
                       args={"version": 3})
        assert e.to_dict() == {"ts": 2.0, "kind": "buffer.write",
                               "stage": "s", "target": "b",
                               "args": {"version": 3}}

    def test_in_memory_queries(self):
        mem = InMemorySink()
        mem.emit(TraceEvent(0.0, "stage.start", stage="a"))
        mem.emit(TraceEvent(1.0, "accuracy.sample", stage="a",
                            target="out", args={"accuracy": 12.5}))
        mem.emit(TraceEvent(2.0, "stage.finish", stage="a"))
        assert len(mem.for_stage("a")) == 3
        assert [e.kind for e in mem.for_kind("stage.start")] \
            == ["stage.start"]
        assert mem.counts() == {"stage.start": 1, "accuracy.sample": 1,
                                "stage.finish": 1}
        assert mem.accuracy_stream("out") == [(1.0, 12.5)]
        assert mem.accuracy_stream("other") == []

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        sink.emit(TraceEvent(0.0, "stage.start", stage="a"))
        sink.emit(TraceEvent(1.0, "accuracy.sample", target="out",
                             args={"accuracy": math.inf}))
        sink.close()
        lines = open(path).read().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["kind"] for e in events] \
            == ["stage.start", "accuracy.sample"]
        # non-finite floats must not leak into strict JSON
        assert isinstance(events[1]["args"]["accuracy"], str)

    def test_jsonl_borrowed_file_left_open(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(TraceEvent(0.0, "stage.start"))
        sink.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["kind"] == "stage.start"

    def test_make_sink_dispatch(self, tmp_path):
        assert isinstance(make_sink(str(tmp_path / "a.jsonl"), "jsonl"),
                          JsonlSink)
        assert isinstance(make_sink(str(tmp_path / "a.json"), "chrome"),
                          ChromeTraceSink)
        with pytest.raises(ValueError, match="csv"):
            make_sink(str(tmp_path / "a.csv"), "csv")

    def test_chrome_sink_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            ChromeTraceSink(io.StringIO(), time_scale=0.0)


class TestSimulatedTrace:
    def test_event_kinds_and_monotone_ts(self):
        auto, ref = map_automaton()
        mem = InMemorySink()
        auto.run_simulated(total_cores=4.0, trace=mem,
                           trace_metric=snr_db, trace_reference=ref)
        counts = mem.counts()
        assert counts["stage.start"] == 1
        assert counts["stage.finish"] == 1
        assert counts["buffer.write"] >= 1
        ts = [e.ts for e in mem.events]
        assert ts == sorted(ts)

    def test_accuracy_stream_monotone_to_inf(self):
        auto, ref = map_automaton()
        mem = InMemorySink()
        auto.run_simulated(total_cores=4.0, trace=mem,
                           trace_metric=snr_db, trace_reference=ref)
        stream = mem.accuracy_stream("out")
        assert len(stream) >= 2
        accs = [a for _, a in stream]
        assert accs == sorted(accs)
        assert accs[-1] == math.inf

    def test_wait_spans_for_downstream_stage(self):
        auto = pipeline_automaton()
        mem = InMemorySink()
        result = auto.run_simulated(total_cores=2.0, trace=mem)
        waits = [e for e in mem.for_kind("stage.wait")
                 if e.stage == "g"]
        assert waits, "g blocks on F at least once"
        assert all(e.args["dur"] >= 0 for e in waits)
        report = result.stage_reports["g"]
        assert report.waits == len(waits)
        assert report.wait_time == pytest.approx(
            sum(e.args["dur"] for e in waits))

    def test_null_sink_run_emits_nothing_and_completes(self):
        auto, ref = map_automaton()
        result = auto.run_simulated(total_cores=4.0, trace=NullSink())
        assert result.completed
        final = result.timeline.final_record("out")
        assert np.array_equal(final.value, ref)


class TestChromeExport:
    def _trace(self, tmp_path):
        auto = build_organization("sync", m=16)
        path = str(tmp_path / "trace.json")
        sink = ChromeTraceSink(path)
        auto.run_simulated(total_cores=2.0, trace=sink,
                           trace_metric=snr_db,
                           trace_reference=auto.precise_output())
        sink.close()
        return json.load(open(path))

    def test_loadable_sorted_and_paired(self, tmp_path):
        doc = self._trace(tmp_path)
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        # strictly valid JSON was implied by json.load; also check ts
        # ordering (metadata records carry no ts)
        ts = [e["ts"] for e in events if e["ph"] != "M"]
        assert ts == sorted(ts)
        # every B has a matching E on the same track
        opens = {}
        for e in events:
            if e["ph"] == "B":
                opens[e["tid"]] = opens.get(e["tid"], 0) + 1
            elif e["ph"] == "E":
                assert opens.get(e["tid"], 0) > 0, \
                    "E without a preceding B"
                opens[e["tid"]] -= 1
        assert all(v == 0 for v in opens.values())

    def test_thread_names_and_counters(self, tmp_path):
        doc = self._trace(tmp_path)
        events = doc["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"f", "g"} <= names
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "accuracy samples become counter tracks"
        for e in counters:
            acc = e["args"]["accuracy"]
            assert isinstance(acc, (int, float)) and math.isfinite(acc)

    def test_wait_spans_are_complete_events(self, tmp_path):
        doc = self._trace(tmp_path)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for e in spans:
            assert e["dur"] >= 0
            assert e["name"].startswith("wait:")


class TestStageReportCounters:
    def test_commands_counted_both_executors(self):
        for run in ("run_simulated", "run_threaded"):
            auto, _ = map_automaton()
            kwargs = ({"total_cores": 4.0} if run == "run_simulated"
                      else {"timeout_s": 30.0})
            result = getattr(auto, run)(**kwargs)
            report = result.stage_reports["m"]
            assert report.commands > 0
            assert report.retries == 0
            assert "commands=" in report.summary()

    def test_retries_and_fault_events_under_injection(self):
        auto, ref = map_automaton()
        injector = FaultInjector.from_specs(["m:3:error"])
        mem = InMemorySink()
        result = auto.run_simulated(
            total_cores=4.0,
            faults=FaultPolicy(max_retries=2, on_failure="restart"),
            injector=injector, trace=mem)
        report = result.stage_reports["m"]
        assert report.failures == 1
        assert report.attempts == 2
        assert report.retries == 1
        assert len(mem.for_kind("fault.injected")) == 1
        assert len(mem.for_kind("stage.restart")) == 1
        # a restart opens a fresh start/finish pair
        assert len(mem.for_kind("stage.start")) == 2
        statuses = [e.args["status"]
                    for e in mem.for_kind("stage.finish")]
        assert statuses[0] == "error"
        assert statuses[-1] == "completed"
        final = result.timeline.final_record("out")
        assert np.array_equal(final.value, ref)

    def test_report_wait_counter_fields(self):
        report = StageReport(stage="s")
        assert (report.waits, report.wait_time) == (0, 0.0)
        report.record_wait(0.25)
        report.record_wait(0.75)
        assert report.waits == 2
        assert report.wait_time == pytest.approx(1.0)
        assert "waits=2" in report.summary()


class TestExecutorParity:
    """Both executors must describe the same execution shape."""

    def _shape(self, counts):
        # wait spans are timing-dependent (the threaded executor only
        # records a wait when it actually blocked) and shm.* events
        # are process-backend data-plane bookkeeping; everything else
        # is determined by the dataflow
        return {k: v for k, v in counts.items()
                if k != "stage.wait" and not k.startswith("shm.")}

    def test_pipeline_demo_trace_shapes_match(self):
        """All three executors — simulated, threaded, process — must
        emit the same event-shape for a deterministic sync pipeline."""
        ref_counts = None
        for run in ("run_simulated", "run_threaded", "run_processes"):
            auto = build_organization("sync", m=16)
            mem = InMemorySink()
            kwargs = ({"total_cores": 2.0} if run == "run_simulated"
                      else {"timeout_s": 30.0})
            kwargs.update(trace=mem, trace_metric=snr_db,
                          trace_reference=auto.precise_output())
            getattr(auto, run)(**kwargs)
            shape = self._shape(mem.counts())
            if ref_counts is None:
                ref_counts = shape
            else:
                assert shape == ref_counts, f"{run} diverged"

    @pytest.mark.parametrize("app", ["conv2d", "kmeans"])
    def test_three_way_final_output_equality(self, app):
        """The executors are different machines running the same
        automaton: their final outputs must be bit-identical."""
        from repro.apps.conv2d import build_conv2d_automaton
        from repro.apps.kmeans import build_kmeans_automaton
        from repro.data.images import clustered_image, scene_image

        if app == "conv2d":
            image = scene_image(24, seed=0)
            build = lambda: build_conv2d_automaton(image)
        else:
            image = clustered_image(16, seed=4, clusters=3)
            build = lambda: build_kmeans_automaton(image, k=3)

        def equal(a, b):
            if isinstance(a, dict):
                return (isinstance(b, dict) and a.keys() == b.keys()
                        and all(equal(a[k], b[k]) for k in a))
            return np.array_equal(a, b)

        reference = build().precise_output()
        finals = {}
        for run in ("run_simulated", "run_threaded", "run_processes"):
            auto = build()
            kwargs = ({"total_cores": 4.0} if run == "run_simulated"
                      else {"timeout_s": 60.0})
            result = getattr(auto, run)(**kwargs)
            assert result.completed, f"{run} did not complete"
            rec = result.timeline.final_record(
                auto.terminal_buffer_name)
            finals[run] = rec.value
        for run, value in finals.items():
            assert equal(value, reference), \
                f"{run} final output != precise reference"

    def test_threaded_energy_matches_simulated(self):
        """Regression: the threaded timeline recorded 0.0 energy for
        every write, so its energy column disagreed with the simulated
        one even in shape."""
        sim_auto, _ = map_automaton()
        sim = sim_auto.run_simulated(total_cores=4.0)
        thr_auto, _ = map_automaton()
        thr = thr_auto.run_threaded(timeout_s=30.0)
        sim_energy = [r.energy for r in sim.output_records("out")]
        thr_energy = [r.energy for r in thr.output_records("out")]
        assert thr_energy, "threaded run produced no writes"
        assert all(e > 0 for e in thr_energy)
        assert thr_energy == sorted(thr_energy)
        # both complete, so the cumulative totals agree exactly
        assert thr_energy[-1] == sim_energy[-1]


class TestEmitHaltRegression:
    def test_halted_emit_stops_interpretation(self):
        """Regression: a halt during a blocked emit must stop the
        generator at the emit — not drop the update and keep pumping."""
        b_f = VersionedBuffer("F")
        b_g = VersionedBuffer("G")
        ch = UpdateChannel("F", capacity=1)

        from repro.core.diffusive import DiffusiveStage
        from repro.anytime.permutations import SequentialPermutation

        class Producer(DiffusiveStage):
            def __init__(self):
                super().__init__("f", b_f, (), shape=4,
                                 permutation=SequentialPermutation(),
                                 chunks=4, cost_per_element=1.0,
                                 emit_to=ch)

            def init_state(self, values):
                return {"total": 0}

            def process_chunk(self, state, indices, values):
                state["total"] += 1
                return 1

            def materialize(self, state, count, values):
                return state["total"]

            def precise(self, input_values):
                return 4

        producer = Producer()
        consumer = SynchronousStageStub("g", b_g, ch)
        graph = AutomatonGraph([producer, consumer])
        executor = ThreadedExecutor(graph)
        executor._t0 = time.perf_counter()

        ch.emit("fill")                    # channel now at capacity
        progressed = []

        def gen():
            yield Emit("blocked-update")
            progressed.append(True)        # must never run
            yield Write(0, final=True)

        timer = threading.Timer(0.05, executor._halt.set)
        timer.start()
        try:
            outcome = executor._interpret(producer, gen())
        finally:
            timer.cancel()
        assert outcome == "halted"
        assert progressed == []
        # the blocked update was not silently enqueued either
        assert ch.try_recv() == (True, "fill")
        assert ch.try_recv() == (False, None)


def SynchronousStageStub(name, output, channel):
    from repro.core.syncstage import SynchronousStage
    return SynchronousStage(name, output, channel,
                            initial_fn=lambda: 0,
                            update_fn=lambda acc, x: acc,
                            update_cost=lambda x: 1.0,
                            precise_fn=lambda fv: 0,
                            precise_cost=1.0)
