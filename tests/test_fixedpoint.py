"""Tests for the fixed-point substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.fixedpoint import Q8, UQ8, FixedPointFormat


class TestFormatValidation:
    def test_rejects_bad_total_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)
        with pytest.raises(ValueError):
            FixedPointFormat(63, 0)

    def test_rejects_frac_exceeding_total(self):
        with pytest.raises(ValueError):
            FixedPointFormat(8, 9)


class TestRanges:
    def test_signed_range(self):
        f = FixedPointFormat(8, 0, signed=True)
        assert (f.min_raw, f.max_raw) == (-128, 127)

    def test_unsigned_range(self):
        assert (UQ8.min_raw, UQ8.max_raw) == (0, 255)

    def test_scale(self):
        assert FixedPointFormat(8, 4).scale == 0.0625

    def test_value_range(self):
        f = FixedPointFormat(8, 4)
        assert f.min_value == -8.0
        assert f.max_value == 127 / 16


class TestQuantize:
    def test_exact_values_roundtrip(self):
        f = FixedPointFormat(8, 4)
        values = np.array([0.0, 1.25, -2.5, 3.0625])
        assert np.array_equal(f.roundtrip(values), values)

    def test_rounds_to_nearest(self):
        f = FixedPointFormat(8, 0)
        assert f.quantize(np.array([2.4, 2.6])).tolist() == [2, 3]

    def test_saturates(self):
        f = FixedPointFormat(8, 0)
        assert f.quantize(np.array([1e6, -1e6])).tolist() == [127, -128]

    def test_unsigned_saturates_at_zero(self):
        assert UQ8.quantize(np.array([-5.0])).tolist() == [0]

    @given(st.lists(st.floats(min_value=-7.9, max_value=7.9,
                              allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_roundtrip_error_bounded_by_half_lsb(self, values):
        f = FixedPointFormat(8, 4)
        approx = f.roundtrip(np.array(values))
        assert np.all(np.abs(approx - np.array(values))
                      <= f.scale / 2 + 1e-12)


class TestTruncate:
    def test_keeps_top_magnitude_bits(self):
        # 63 has 7 magnitude bits (0111111); keeping the top 3 zeroes
        # the low 4: 0110000 = 48
        f = FixedPointFormat(8, 0, signed=True)
        assert f.truncate(np.array([0b0111111]), 3).tolist() == \
            [0b0110000]

    def test_preserves_sign(self):
        f = FixedPointFormat(8, 0, signed=True)
        assert f.truncate(np.array([-100]), 3).tolist() == [-96]

    def test_full_precision_is_identity(self):
        f = FixedPointFormat(8, 0)
        v = np.array([123, -45])
        assert np.array_equal(f.truncate(v, 8), v)

    def test_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(8, 0).truncate(np.array([1]), 9)


class TestQuantizationSnr:
    def test_exact_is_inf(self):
        f = FixedPointFormat(8, 4)
        assert f.quantization_snr_db(np.array([1.25, 2.5])) == \
            float("inf")

    def test_more_bits_more_snr(self, rng):
        values = rng.uniform(-1, 1, 100)
        coarse = FixedPointFormat(6, 5).quantization_snr_db(values)
        fine = FixedPointFormat(12, 11).quantization_snr_db(values)
        assert fine > coarse

    def test_q8_constant_sane(self):
        assert Q8.total_bits == 8 and Q8.signed
