"""Tests for the dwt53 application (paper Figures 13, 17)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.dwt53 import (build_dwt53_automaton, dwt53_forward,
                              dwt53_inverse, dwt53_perforated,
                              dwt53_rows, idwt53_rows, reconstruct,
                              reconstruction_metric)
from repro.metrics.snr import snr_db


class TestLifting:
    def test_rows_roundtrip_exact(self, rng):
        data = rng.integers(0, 256, size=(8, 16))
        assert np.array_equal(idwt53_rows(dwt53_rows(data)), data)

    @given(hnp.arrays(np.int64, st.tuples(st.integers(1, 8),
                                          st.sampled_from([2, 4, 8, 16])),
                      elements=st.integers(-1000, 1000)))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        assert np.array_equal(idwt53_rows(dwt53_rows(data)), data)

    def test_rejects_odd_extent(self):
        with pytest.raises(ValueError, match="even"):
            dwt53_rows(np.zeros((2, 5), dtype=np.int64))
        with pytest.raises(ValueError, match="even"):
            idwt53_rows(np.zeros((2, 5), dtype=np.int64))

    def test_constant_signal_has_zero_details(self):
        data = np.full((1, 16), 100, dtype=np.int64)
        coeffs = dwt53_rows(data)
        assert (coeffs[:, 8:] == 0).all()
        assert (coeffs[:, :8] == 100).all()

    def test_detail_coefficients_capture_highfreq(self):
        smooth = dwt53_rows(np.arange(0, 32, 2).reshape(1, -1))
        jagged = dwt53_rows(
            np.tile([0, 100], 8).reshape(1, -1).astype(np.int64))
        assert np.abs(jagged[:, 8:]).sum() > np.abs(smooth[:, 8:]).sum()


class Test2D:
    @given(st.integers(0, 2 ** 31), st.sampled_from([1, 2, 3]))
    @settings(max_examples=20, deadline=None)
    def test_forward_inverse_roundtrip(self, seed, levels):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, size=(32, 32))
        coeffs = dwt53_forward(img, levels=levels)
        assert np.array_equal(dwt53_inverse(coeffs, levels=levels), img)

    def test_multilevel_nests_quadrants(self, small_image):
        c1 = dwt53_forward(small_image, levels=1)
        c2 = dwt53_forward(small_image, levels=2)
        h, w = small_image.shape
        # outside the top-left quadrant the transforms agree
        assert np.array_equal(c1[h // 2:, :], c2[h // 2:, :])
        assert np.array_equal(c1[:, w // 2:], c2[:, w // 2:])

    def test_energy_compaction(self, small_image):
        """Most signal energy lands in the approximation quadrant."""
        c = dwt53_forward(small_image, levels=1)
        h, w = small_image.shape
        ll = c[:h // 2, :w // 2].astype(np.float64)
        total = c.astype(np.float64)
        assert (ll ** 2).sum() > 0.5 * (total ** 2).sum()


class TestPerforation:
    def test_stride_one_is_precise(self, small_image):
        assert np.array_equal(dwt53_perforated(small_image, 1),
                              dwt53_forward(small_image))

    def test_larger_stride_lower_accuracy(self, small_image):
        ref = small_image
        errors = []
        for stride in (8, 4, 2, 1):
            rec = reconstruct(dwt53_perforated(small_image, stride))
            errors.append(np.abs(rec.astype(np.int64)
                                 - ref.astype(np.int64)).sum())
        assert errors[-1] == 0
        assert errors[0] >= errors[1] >= errors[2] >= errors[3]

    def test_perforated_output_is_valid_coefficients(self, small_image):
        """Even the coarsest perforation yields a complete, invertible
        coefficient array — a valid anytime output."""
        coeffs = dwt53_perforated(small_image, 8)
        assert coeffs.shape == small_image.shape
        rec = reconstruct(coeffs)
        assert rec.shape == small_image.shape


class TestAutomaton:
    def test_single_iterative_stage(self, small_image):
        auto = build_dwt53_automaton(small_image)
        assert len(auto.graph.stages) == 1
        assert auto.graph.stages[0].name == "forward"

    def test_versions_equal_stride_levels(self, small_image):
        auto = build_dwt53_automaton(small_image,
                                     strides=(4, 2, 1))
        res = auto.run_simulated(total_cores=8.0)
        assert len(res.output_records("coeffs")) == 3

    def test_reconstruction_metric_profile(self, small_image):
        auto = build_dwt53_automaton(small_image)
        res = auto.run_simulated(total_cores=8.0)
        prof = auto.profile(res, total_cores=8.0,
                            metric=reconstruction_metric(),
                            reference=small_image)
        snrs = [s for _, s in prof.to_rows()]
        assert all(b >= a for a, b in zip(snrs, snrs[1:]))
        assert math.isinf(snrs[-1]), \
            "5/3 lifting is lossless: full reconstruction is bit-exact"

    def test_reconstruction_metric_function(self, small_image):
        coeffs = dwt53_forward(small_image)
        metric = reconstruction_metric()
        assert math.isinf(metric(coeffs, small_image))
        approx = dwt53_perforated(small_image, 4)
        assert metric(approx, small_image) < math.inf
