"""Tests for the anytime document-search application."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.search import (build_search_automaton, make_corpus,
                               recall_at_k, recall_metric,
                               score_documents, search_precise,
                               topk_merge_operator)


@pytest.fixture(scope="module")
def corpus():
    return make_corpus(n_docs=1024, n_terms=32, seed=3)


@pytest.fixture(scope="module")
def query(corpus):
    rng = np.random.default_rng(9)
    return rng.dirichlet(np.ones(corpus.n_terms) * 0.3)


class TestCorpus:
    def test_shape_and_determinism(self):
        a = make_corpus(128, 16, seed=1)
        b = make_corpus(128, 16, seed=1)
        assert a.weights.shape == (128, 16)
        assert np.array_equal(a.weights, b.weights)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            make_corpus(0, 16)

    def test_score_validates_query(self, corpus):
        with pytest.raises(ValueError, match="terms"):
            score_documents(corpus, np.ones(3), np.array([0]))


class TestTopkOperator:
    def test_commutative_and_idempotent(self):
        op = topk_merge_operator(3)
        a = np.array([[1.0, 5.0], [2.0, 3.0]])
        b = np.array([[3.0, 4.0], [4.0, 1.0]])
        ab = op.combine(a, b)
        ba = op.combine(b, a)
        assert np.array_equal(ab, ba)
        assert np.array_equal(op.combine(ab, ab), ab)
        assert op.idempotent

    def test_keeps_best_k_by_score(self):
        op = topk_merge_operator(2)
        a = np.array([[1.0, 5.0], [2.0, 3.0], [3.0, 9.0]])
        out = op.combine(op.identity((), np.float64), a)
        assert out[:, 0].tolist() == [3.0, 1.0]

    def test_tie_break_by_doc_id(self):
        op = topk_merge_operator(1)
        a = np.array([[7.0, 5.0], [2.0, 5.0]])
        out = op.combine(op.identity((), np.float64), a)
        assert out[0, 0] == 2.0

    def test_duplicate_ids_collapse(self):
        op = topk_merge_operator(5)
        a = np.array([[1.0, 5.0]])
        out = op.combine(a, a)
        assert out.shape == (1, 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            topk_merge_operator(0)


class TestRecall:
    def test_exact_result_full_recall(self):
        ref = np.array([[1.0, 9.0], [2.0, 8.0]])
        assert recall_at_k(ref, ref) == 1.0
        assert math.isinf(recall_metric(ref, ref))

    def test_partial_recall(self):
        ref = np.array([[1.0, 9.0], [2.0, 8.0]])
        got = np.array([[1.0, 9.0], [7.0, 5.0]])
        assert recall_at_k(got, ref) == 0.5
        assert recall_metric(got, ref) == pytest.approx(
            -10 * math.log10(0.5))

    def test_empty_result(self):
        ref = np.array([[1.0, 9.0]])
        assert recall_at_k(np.empty((0, 2)), ref) == 0.0


class TestAutomaton:
    def test_final_result_is_exact_topk(self, corpus, query):
        auto = build_search_automaton(corpus, query, k=10, chunks=8)
        ref = search_precise(corpus, query, k=10)
        assert np.array_equal(auto.precise_output(), ref)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("hits")
        assert np.array_equal(final.value, ref)

    def test_recall_monotone_over_versions(self, corpus, query):
        """A running top-k can only improve: an in-truth document is
        evicted only by a higher-scoring document, which is then also
        in the truth set."""
        auto = build_search_automaton(corpus, query, k=10, chunks=16)
        ref = search_precise(corpus, query, k=10)
        res = auto.run_simulated(total_cores=8.0)
        recalls = [recall_at_k(r.value, ref)
                   for r in res.output_records("hits")]
        assert all(b >= a for a, b in zip(recalls, recalls[1:]))
        assert recalls[-1] == 1.0

    def test_early_versions_are_valid_result_sets(self, corpus, query):
        auto = build_search_automaton(corpus, query, k=10, chunks=16)
        res = auto.run_simulated(total_cores=8.0)
        for rec in res.output_records("hits"):
            hits = rec.value
            assert hits.shape[1] == 2
            assert len(hits) <= 10
            # scores sorted descending
            assert (np.diff(hits[:, 1]) <= 1e-12).all()

    def test_good_recall_early(self, corpus, query):
        """Half the corpus scanned already recovers most of the top-k
        (the hold-the-enter-key payoff)."""
        auto = build_search_automaton(corpus, query, k=10, chunks=16)
        ref = search_precise(corpus, query, k=10)
        res = auto.run_simulated(total_cores=8.0)
        recs = res.output_records("hits")
        halfway = recs[len(recs) // 2]
        assert recall_at_k(halfway.value, ref) >= 0.5

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_exactness_for_random_queries(self, seed):
        corpus = make_corpus(256, 16, seed=4)
        rng = np.random.default_rng(seed)
        query = rng.uniform(0, 1, size=16)
        auto = build_search_automaton(corpus, query, k=5, chunks=4)
        ref = search_precise(corpus, query, k=5)
        res = auto.run_simulated(total_cores=4.0)
        final = res.timeline.final_record("hits")
        assert np.array_equal(final.value, ref)
