"""Edge-case combinations across features: synchronous pipelines under
dynamic sharing, multi-level dwt53, contract + reorder, and other
cross-feature interactions."""

import math

import numpy as np
import pytest

from repro.apps.dwt53 import (build_dwt53_automaton, dwt53_forward,
                              reconstruction_metric)
from repro.apps.pipeline_demo import build_organization
from repro.core.scheduling import equal_shares


class TestSyncUnderDynamicShares:
    def test_sync_pipeline_with_processor_sharing(self):
        """Channel backpressure and the pool interact correctly: a
        producer blocked on a full channel is not 'computing', so the
        consumer inherits its cores."""
        auto = build_organization("sync", m=16)
        ref = auto.precise_output()
        res = auto.run_simulated(total_cores=2.0, schedule=equal_shares,
                                 dynamic_shares=True)
        assert res.completed
        final = res.timeline.final_record(auto.terminal_buffer_name)
        assert np.array_equal(final.value, ref)

    @pytest.mark.parametrize("org", ["baseline", "iterative",
                                     "iterative-async",
                                     "diffusive-async", "sync"])
    def test_all_organizations_under_dynamic_shares(self, org):
        auto = build_organization(org, m=16)
        ref = auto.precise_output()
        res = auto.run_simulated(
            total_cores=float(len(auto.graph.stages)),
            schedule=equal_shares, dynamic_shares=True)
        final = res.timeline.final_record(auto.terminal_buffer_name)
        assert np.array_equal(final.value, ref), org


class TestMultiLevelDwt:
    def test_two_level_automaton_reconstructs(self, small_image):
        auto = build_dwt53_automaton(small_image, levels=2)
        res = auto.run_simulated(total_cores=8.0)
        prof = auto.profile(res, total_cores=8.0,
                            metric=reconstruction_metric(levels=2),
                            reference=small_image)
        assert math.isinf(prof.final_snr_db)

    def test_two_level_final_coefficients_exact(self, small_image):
        auto = build_dwt53_automaton(small_image, levels=2)
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("coeffs")
        assert np.array_equal(final.value,
                              dwt53_forward(small_image, levels=2))


class TestContractWithMitigations:
    def test_contract_on_reordered_automaton(self, small_image):
        """Contract planning reads the stage's effective (reordered)
        penalty, so the element budget reflects sequential access."""
        from repro.apps.conv2d import build_conv2d_automaton
        from repro.core.contract import plan_contract

        plain = plan_contract(
            build_conv2d_automaton(small_image), 0.5)
        reordered = plan_contract(
            build_conv2d_automaton(small_image, reorder=True), 0.5)
        # sequential access is cheaper per element, so the same budget
        # buys more samples
        assert reordered.element_limits["conv"] is None or \
            plain.element_limits["conv"] is None or \
            reordered.element_limits["conv"] > \
            plain.element_limits["conv"]


class TestStopConditionsUnderDynamicShares:
    def test_deadline_respected(self, small_image):
        from repro.apps.histeq import build_histeq_automaton
        from repro.core.controller import DeadlineStop

        auto = build_histeq_automaton(small_image, chunks=8)
        deadline = auto.baseline_duration(16.0) * 1.5
        res = auto.run_simulated(total_cores=16.0,
                                 stop=DeadlineStop(deadline),
                                 dynamic_shares=True)
        for rec in res.timeline.records:
            assert rec.time <= deadline + 1e-9

    def test_version_count_stop(self, small_image):
        from repro.apps.conv2d import build_conv2d_automaton
        from repro.core.controller import VersionCountStop

        auto = build_conv2d_automaton(small_image, chunks=8)
        res = auto.run_simulated(total_cores=8.0,
                                 stop=VersionCountStop(3),
                                 dynamic_shares=True)
        assert len(res.output_records("filtered")) == 3


class TestMandelbrotExample:
    """The tutorial's custom app is importable and correct end to end."""

    def test_kernel_pure_and_automaton_exact(self):
        import importlib.util
        import pathlib
        import sys

        path = (pathlib.Path(__file__).parent.parent / "examples"
                / "custom_app_mandelbrot.py")
        spec = importlib.util.spec_from_file_location("mandel", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["mandel"] = module
        spec.loader.exec_module(module)
        from repro.core.properties import check_purity

        idx = np.arange(16, dtype=np.int64)
        params = np.array(module.VIEW)
        check_purity(module.escape_counts, [idx, params])
        auto = module.build_mandelbrot_automaton()
        ref = auto.precise_output()
        res = auto.run_simulated(total_cores=8.0)
        final = res.timeline.final_record("fractal")
        assert np.array_equal(final.value, ref)
        del sys.modules["mandel"]
