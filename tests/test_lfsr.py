"""Tests for the LFSR pseudo-random generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anytime.lfsr import MAXIMAL_TAPS, Lfsr, lfsr_sequence


class TestTaps:
    def test_all_widths_present(self):
        assert sorted(MAXIMAL_TAPS) == list(range(2, 33))

    def test_taps_in_range(self):
        for width, taps in MAXIMAL_TAPS.items():
            assert all(1 <= t <= width for t in taps)

    @pytest.mark.parametrize("width", range(2, 17))
    def test_maximal_period_covers_all_nonzero_states(self, width):
        seq = lfsr_sequence(width)
        assert sorted(seq) == list(range(1, 1 << width))


class TestLfsr:
    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError, match="non-zero"):
            Lfsr(8, seed=0)

    def test_rejects_seed_that_wraps_to_zero(self):
        with pytest.raises(ValueError, match="non-zero"):
            Lfsr(4, seed=16)   # 16 & 0xF == 0

    @pytest.mark.parametrize("width", [1, 0, 33, 64])
    def test_rejects_bad_width(self, width):
        with pytest.raises(ValueError, match="width"):
            Lfsr(width)

    def test_rejects_out_of_range_taps(self):
        with pytest.raises(ValueError, match="taps"):
            Lfsr(4, taps=(5, 1))

    def test_state_never_zero(self):
        lfsr = Lfsr(6, seed=33)
        for _ in range(lfsr.period):
            assert lfsr.step() != 0

    def test_period_property(self):
        assert Lfsr(10).period == 1023

    def test_reset_restores_seed_sequence(self):
        lfsr = Lfsr(8, seed=77)
        first = [lfsr.step() for _ in range(10)]
        lfsr.reset()
        assert [lfsr.step() for _ in range(10)] == first

    def test_states_iterator_matches_step(self):
        a = Lfsr(8, seed=5)
        b = Lfsr(8, seed=5)
        assert list(a.states(20)) == [b.step() for _ in range(20)]

    @given(st.integers(min_value=2, max_value=14),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=40)
    def test_determinism(self, width, seed):
        seed = seed % ((1 << width) - 1) + 1
        s1 = list(Lfsr(width, seed=seed).states(50))
        s2 = list(Lfsr(width, seed=seed).states(50))
        assert s1 == s2

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=11)
    def test_sequence_is_cyclic(self, width):
        lfsr = Lfsr(width, seed=1)
        period = lfsr.period
        first = [lfsr.step() for _ in range(period)]
        second = [lfsr.step() for _ in range(period)]
        assert first == second

    def test_different_seeds_are_rotations(self):
        """Any non-zero seed walks the same maximal cycle."""
        base = set(lfsr_sequence(8, seed=1))
        other = set(lfsr_sequence(8, seed=111))
        assert base == other
